#include "engine/frontend.hpp"

#include "engine/corpus_version.hpp"
#include "engine/env.hpp"
#include "util/fasta.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

namespace semilocal {
namespace {

// ---------------------------------------------------------------------------
// Shared plumbing (both frontends).

/// Atomic twins of FrontendStats, written from the event loop, the pumps and
/// the session threads, read by any stats() caller.
struct Counters {
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> active{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> closed{0};
  std::atomic<std::uint64_t> retry_after{0};
  std::atomic<std::uint64_t> frames{0};
  std::atomic<std::uint64_t> partial_frames{0};
  std::atomic<std::uint64_t> protocol_errors{0};
  std::atomic<std::uint64_t> timeouts_idle{0};
  std::atomic<std::uint64_t> timeouts_read{0};
  std::atomic<std::uint64_t> write_queue_disconnects{0};
  std::atomic<std::uint64_t> inline_answers{0};
  std::atomic<std::uint64_t> pump_answers{0};

  [[nodiscard]] FrontendStats snapshot() const {
    FrontendStats s;
    s.connections_accepted = accepted.load(std::memory_order_relaxed);
    s.connections_active = active.load(std::memory_order_relaxed);
    s.connections_shed = shed.load(std::memory_order_relaxed);
    s.connections_closed = closed.load(std::memory_order_relaxed);
    s.retry_after_sent = retry_after.load(std::memory_order_relaxed);
    s.frames_decoded = frames.load(std::memory_order_relaxed);
    s.partial_frames = partial_frames.load(std::memory_order_relaxed);
    s.protocol_errors = protocol_errors.load(std::memory_order_relaxed);
    s.timeouts_idle = timeouts_idle.load(std::memory_order_relaxed);
    s.timeouts_read = timeouts_read.load(std::memory_order_relaxed);
    s.write_queue_disconnects =
        write_queue_disconnects.load(std::memory_order_relaxed);
    s.inline_answers = inline_answers.load(std::memory_order_relaxed);
    s.pump_answers = pump_answers.load(std::memory_order_relaxed);
    return s;
  }
};

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Serving 10k+ sockets needs 10k+ fds; lift the soft limit to the hard one
/// once per process so the default 1024 does not masquerade as load shedding.
void raise_fd_limit() {
  static const bool done = [] {
    rlimit lim{};
    if (::getrlimit(RLIMIT_NOFILE, &lim) == 0 && lim.rlim_cur < lim.rlim_max) {
      lim.rlim_cur = lim.rlim_max;
      (void)::setrlimit(RLIMIT_NOFILE, &lim);
    }
    return true;
  }();
  (void)done;
}

/// Binds a loopback listener; returns {fd, bound port}.
std::pair<int, int> make_listener(int port, int backlog, bool non_blocking) {
  const int type = SOCK_STREAM | SOCK_CLOEXEC | (non_blocking ? SOCK_NONBLOCK : 0);
  const int fd = ::socket(AF_INET, type, 0);
  if (fd < 0) throw_errno("frontend: socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, backlog) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throw_errno("frontend: bind/listen");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  return {fd, static_cast<int>(ntohs(addr.sin_port))};
}

Sequence ingest(bool dna, Sequence raw) { return dna ? pack_dna(raw) : std::move(raw); }

QueryKind kind_of(Op op) {
  switch (op) {
    case Op::kLcs:
      return QueryKind::kLcs;
    case Op::kStringSubstring:
      return QueryKind::kStringSubstring;
    case Op::kSubstringString:
      return QueryKind::kSubstringString;
    default:
      throw std::invalid_argument("op carries no query kind");
  }
}

Response overloaded_response(Index retry_ms, const std::string& text) {
  Response response;
  response.status = Status::kOverloaded;
  response.retry_ms = std::max<Index>(1, retry_ms);
  response.text = text;
  return response;
}

Response error_response(const std::string& text) {
  Response response;
  response.status = Status::kError;
  response.text = text;
  return response;
}

/// Answers a query request off an acquired entry. Exceptions (bad windows,
/// out-of-range coordinates) become kError responses at the caller.
Response answer_with_entry(ComparisonEngine& engine, const CachedKernel& entry,
                           const Request& request) {
  Response response;
  if (request.op == Op::kBatchQuery) {
    response.values = engine.answer_batch(entry, request.windows);
    response.value = static_cast<Index>(response.values.size());
  } else {
    response.value = engine.answer(entry, kind_of(request.op), request.x, request.y);
  }
  return response;
}

/// Splices the frontend_* counters into a flat JSON object (engine stats or
/// a handler's own stats document -- both end with '}').
void append_frontend_fields(std::string& out, const FrontendStats& f) {
  out.pop_back();  // reopen the object
  const auto field = [&out](const char* name, std::uint64_t value) {
    out += ", \"";
    out += name;
    out += "\": ";
    out += std::to_string(value);
  };
  field("frontend_connections", f.connections_accepted);
  field("frontend_active", f.connections_active);
  field("frontend_shed", f.connections_shed);
  field("frontend_closed", f.connections_closed);
  field("frontend_retry_after_sent", f.retry_after_sent);
  field("frontend_frames", f.frames_decoded);
  field("frontend_partial_frames", f.partial_frames);
  field("frontend_protocol_errors", f.protocol_errors);
  field("frontend_timeouts_idle", f.timeouts_idle);
  field("frontend_timeouts_read", f.timeouts_read);
  field("frontend_write_queue_disconnects", f.write_queue_disconnects);
  field("frontend_inline_answers", f.inline_answers);
  field("frontend_pump_answers", f.pump_answers);
  out += "}";
}

}  // namespace

std::string stats_json(const EngineStats& stats, const FrontendStats& f) {
  std::string out = stats_json(stats);
  append_frontend_fields(out, f);
  return out;
}

// ---------------------------------------------------------------------------
// FrontendServer: the epoll reactor.

struct FrontendServer::Impl {
  // epoll_event.data.u64 tags; connection ids start above the sentinels.
  static constexpr std::uint64_t kListenerTag = 1;
  static constexpr std::uint64_t kStopTag = 2;
  static constexpr std::uint64_t kCompletionTag = 3;
  static constexpr std::uint64_t kFirstConnId = 16;

  /// One response slot, in request order. Responses flush strictly FIFO per
  /// connection, so a fast cache hit never overtakes a cold compute that
  /// arrived first on the same socket. A streaming op (kAlignmentPlot) lands
  /// several completions in one slot: each tile's bytes flush as they arrive,
  /// but the slot retires only once its terminal frame has been queued.
  struct Pending {
    std::uint64_t seq = 0;
    bool done = false;  // terminal frame received; slot retires once flushed
    std::string bytes;  // framed bytes not yet moved into the flush buffer
  };

  /// Hand-off between a streaming pump and the event loop: the pump posts a
  /// tile completion carrying this gate, then blocks until the loop grants
  /// the next tile (write queue drained below the watermark) or cancels
  /// (connection gone, shutdown). This is how a million-cell plot streams
  /// through a bounded write queue without the pump racing ahead of the
  /// socket.
  struct StreamGate {
    std::mutex mutex;
    std::condition_variable cv;
    bool proceed = false;
    bool cancel = false;
  };

  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    std::string label;  // "conn:<id>" -- the Env fault-rule path
    FrameDecoder decoder;
    std::deque<Pending> pending;
    std::size_t pending_ready_bytes = 0;  // framed bytes parked behind a gap
    std::string out;                      // flush buffer (FIFO head of pending)
    std::size_t out_off = 0;
    std::size_t inflight = 0;  // slots awaiting a pump completion
    std::uint64_t next_seq = 0;
    std::uint64_t last_read_ns = 0;
    std::uint64_t frame_start_ns = 0;  // != 0 while a partial frame pends
    bool want_write = false;
    bool close_after_flush = false;
    /// Set on ProtocolError: the decoder is poisoned (no frame boundary to
    /// resynchronize on), so this socket must never be read again -- further
    /// bytes would re-parse misaligned as bogus frames, and the responses
    /// they generate would postpone the close_after_flush close forever.
    bool read_closed = false;
    /// Set by close_conn. The Conn object itself outlives the close until
    /// the end of the event-loop iteration (see graveyard): a handler that
    /// closes a connection from inside FrameDecoder::feed must not free the
    /// decoder that is still executing under its feet.
    bool dead = false;
    /// Streams paced by this loop: gates park here when the write queue sits
    /// above the watermark, and flush grants them once it drains.
    /// stream_parked_ns is when the oldest still-parked gate stalled -- a
    /// peer that never drains its socket trips the read-timeout clock on it.
    std::vector<std::shared_ptr<StreamGate>> parked_gates;
    std::uint64_t stream_parked_ns = 0;
  };

  /// A cold request parked on a scheduler future, waiting for a pump.
  struct Ticket {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    std::shared_future<CachedKernelPtr> future;
    Request request;
  };

  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    std::string bytes;  // framed response (one stream frame for plots)
    bool done = true;   // terminal: the slot may retire once flushed
    std::shared_ptr<StreamGate> gate;  // non-null while the stream pends
  };

  ComparisonEngine* engine;  ///< nullptr in handler mode
  FrontendOptions options;
  Env* env;
  Counters counters;

  int listener = -1;
  int bound_port = 0;
  int epoll_fd = -1;
  int stop_fd = -1;        // eventfd; request_stop() writes it (signal-safe)
  int completion_fd = -1;  // eventfd; pumps ring it after posting

  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;
  /// Closed conns parked until the current event-loop iteration ends, so
  /// references held by in-progress handlers stay valid.
  std::vector<std::unique_ptr<Conn>> graveyard;
  std::uint64_t next_conn_id = kFirstConnId;

  std::mutex pump_mutex;
  std::condition_variable pump_ready;
  std::deque<Ticket> pump_queue;
  bool pump_stop = false;
  std::atomic<bool> hard_stop{false};
  std::vector<std::thread> pumps;

  std::mutex completion_mutex;
  std::vector<Completion> completions;

  bool draining = false;
  std::uint64_t drain_deadline_ns = 0;

  Impl(ComparisonEngine* eng, FrontendOptions opts)
      : engine(eng), options(std::move(opts)), env(options.env ? options.env : &real_env()) {
    if (engine == nullptr && !options.handler) {
      throw std::invalid_argument("frontend: handler mode requires a handler");
    }
    raise_fd_limit();
    auto [fd, port] = make_listener(options.port, options.listen_backlog,
                                    /*non_blocking=*/true);
    listener = fd;
    bound_port = port;
    epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    stop_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    completion_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (epoll_fd < 0 || stop_fd < 0 || completion_fd < 0) {
      const int err = errno;
      close_fds();
      errno = err;
      throw_errno("frontend: epoll/eventfd");
    }
    try {
      watch(listener, kListenerTag, EPOLLIN);
      watch(stop_fd, kStopTag, EPOLLIN);
      watch(completion_fd, kCompletionTag, EPOLLIN);
    } catch (...) {
      // ~Impl never runs for a partially constructed object; sweep the four
      // live descriptors here or they leak.
      close_fds();
      throw;
    }
  }

  ~Impl() { close_fds(); }

  void close_fds() {
    for (auto& [id, conn] : conns) {
      if (conn->fd >= 0) ::close(conn->fd);
    }
    conns.clear();
    for (int* fd : {&listener, &epoll_fd, &stop_fd, &completion_fd}) {
      if (*fd >= 0) ::close(*fd);
      *fd = -1;
    }
  }

  void watch(int fd, std::uint64_t tag, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = tag;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      throw_errno("frontend: epoll_ctl add");
    }
  }

  void rearm(Conn& conn, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = conn.id;
    (void)::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
  }

  [[nodiscard]] std::uint64_t now_ms() { return env->now_ns() / 1'000'000; }

  /// EPOLLIN interest for a connection: none while draining or once its
  /// decoder is poisoned (read_closed).
  [[nodiscard]] std::uint32_t read_interest(const Conn& conn) const {
    return (draining || conn.read_closed) ? 0u : static_cast<std::uint32_t>(EPOLLIN);
  }

  // -- connection lifecycle -------------------------------------------------

  void accept_ready() {
    while (true) {
      const int fd = ::accept4(listener, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
        return;  // transient accept errors: the listener event will re-fire
      }
      const int nodelay = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
      if (conns.size() >= options.max_connections) {
        // The admission gate: the peer gets one typed RETRY_AFTER frame and
        // a close, never a connection that silently goes nowhere.
        shed(fd);
        continue;
      }
      auto conn = std::make_unique<Conn>();
      conn->fd = fd;
      conn->id = next_conn_id++;
      conn->label = "conn:" + std::to_string(conn->id);
      conn->last_read_ns = env->now_ns();
      watch(fd, conn->id, EPOLLIN);
      counters.accepted.fetch_add(1, std::memory_order_relaxed);
      counters.active.fetch_add(1, std::memory_order_relaxed);
      conns.emplace(conn->id, std::move(conn));
    }
  }

  void shed(int fd) {
    counters.shed.fetch_add(1, std::memory_order_relaxed);
    const std::string frame = frame_payload(encode_response(overloaded_response(
        options.admission_retry_ms, "connection limit reached")));
    // Best effort: a fresh socket's send buffer always holds one small frame.
    (void)env->fd_write(fd, frame.data(), frame.size(), "conn:shed");
    counters.retry_after.fetch_add(1, std::memory_order_relaxed);
    ::close(fd);
  }

  static void gate_signal(StreamGate& gate, bool cancel) {
    {
      std::lock_guard lock(gate.mutex);
      (cancel ? gate.cancel : gate.proceed) = true;
    }
    gate.cv.notify_all();
  }

  [[nodiscard]] static std::size_t queued_bytes(const Conn& conn) {
    return (conn.out.size() - conn.out_off) + conn.pending_ready_bytes;
  }

  /// Streams pause once a connection's queued bytes pass this and resume
  /// when flush drains back under it; half the cap leaves room for one more
  /// tile frame without tripping the disconnect cap.
  [[nodiscard]] std::size_t stream_watermark() const {
    return options.max_write_queue_bytes / 2;
  }

  void close_conn(std::uint64_t id) {
    const auto it = conns.find(id);
    if (it == conns.end()) return;
    Conn& conn = *it->second;
    conn.dead = true;
    for (const auto& gate : conn.parked_gates) gate_signal(*gate, /*cancel=*/true);
    conn.parked_gates.clear();
    ::close(conn.fd);  // EPOLL_CTL_DEL is implicit in close(2)
    conn.fd = -1;
    graveyard.push_back(std::move(it->second));  // freed after this iteration
    conns.erase(it);
    counters.active.fetch_sub(1, std::memory_order_relaxed);
    counters.closed.fetch_add(1, std::memory_order_relaxed);
  }

  // -- read path ------------------------------------------------------------

  void read_ready(Conn& conn) {
    if (conn.read_closed) return;
    char buf[1 << 16];
    const long n = env->fd_read(conn.fd, buf, sizeof(buf), conn.label);
    if (n == 0) {  // peer hung up
      close_conn(conn.id);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      close_conn(conn.id);  // injected EIO or a real connection error
      return;
    }
    conn.last_read_ns = env->now_ns();
    try {
      conn.decoder.feed(std::string_view(buf, static_cast<std::size_t>(n)),
                        [&](std::string_view payload, bool spanned) {
                          if (conn.dead) return;  // closed by an earlier frame
                          counters.frames.fetch_add(1, std::memory_order_relaxed);
                          if (spanned) {
                            counters.partial_frames.fetch_add(
                                1, std::memory_order_relaxed);
                          }
                          on_frame(conn, payload);
                        });
    } catch (const ProtocolError& e) {
      // The stream is unframed from here on; report and hang up.
      counters.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      if (!conn.dead) {
        conn.read_closed = true;
        conn.close_after_flush = true;
        push_response(conn, error_response(e.what()));  // flushes internally
        // flush rearms only on want_write edges; drop EPOLLIN unconditionally
        // so a hostile sender cannot keep the poisoned stream alive.
        if (!conn.dead) {
          rearm(conn, conn.want_write ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
        }
      }
      return;
    }
    // Arm or clear the slow-loris clock.
    if (!conn.dead) {
      conn.frame_start_ns = conn.decoder.mid_frame()
                                ? (conn.frame_start_ns != 0 ? conn.frame_start_ns
                                                            : env->now_ns())
                                : 0;
    }
  }

  /// One decoded request frame. Admission verdicts are issued here; accepted
  /// cold requests park on a pump ticket.
  void on_frame(Conn& conn, std::string_view payload) {
    if (conn.dead) return;
    Request request;
    try {
      request = decode_request(payload);
    } catch (const ProtocolError& e) {
      counters.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      push_response(conn, error_response(e.what()));
      return;
    }
    if (options.handler) {
      // Handler mode (the shard router): kStats answers inline with the
      // frontend counters spliced in; everything else -- including kPing,
      // whose answer asserts this process, not a backend, is alive -- rides
      // a pump ticket, because the handler may block on downstream sockets.
      if (request.op == Op::kStats) {
        Response response;
        try {
          response = options.handler(request);
        } catch (const std::exception& e) {
          response = error_response(e.what());
        }
        if (response.status == Status::kOk && !response.text.empty() &&
            response.text.back() == '}') {
          append_frontend_fields(response.text, counters.snapshot());
        }
        counters.inline_answers.fetch_add(1, std::memory_order_relaxed);
        push_response(conn, std::move(response));
        return;
      }
      if (conn.inflight >= options.max_inflight_per_conn) {
        counters.retry_after.fetch_add(1, std::memory_order_relaxed);
        push_response(conn, overloaded_response(options.admission_retry_ms,
                                                "per-connection in-flight limit"));
        return;
      }
      const std::uint64_t seq = conn.next_seq++;
      conn.pending.push_back(Pending{seq, false, {}});
      ++conn.inflight;
      {
        std::lock_guard lock(pump_mutex);
        pump_queue.push_back(Ticket{conn.id, seq, {}, std::move(request)});
      }
      pump_ready.notify_one();
      return;
    }
    switch (request.op) {
      case Op::kPing:
        push_response(conn, Response{});
        return;
      case Op::kStats: {
        Response response;
        response.text = stats_json(engine->stats(), counters.snapshot());
        push_response(conn, std::move(response));
        return;
      }
      case Op::kHealth: {
        Response response;
        response.text = health_json(engine->stats());
        push_response(conn, std::move(response));
        return;
      }
      case Op::kShardCtl:
        push_response(conn, error_response("shardctl: not a router"));
        return;
      default:
        break;
    }
    // Per-connection in-flight budget: a client may not park unbounded
    // compute on one socket. The verdict is typed, the connection lives.
    if (conn.inflight >= options.max_inflight_per_conn) {
      counters.retry_after.fetch_add(1, std::memory_order_relaxed);
      push_response(conn, overloaded_response(options.admission_retry_ms,
                                              "per-connection in-flight limit"));
      return;
    }
    if (request.op != Op::kUpsert) {
      // kUpsert's `a` carries the document id, never sequence data.
      request.a = ingest(options.dna, std::move(request.a));
    }
    request.b = ingest(options.dna, std::move(request.b));
    if (request.op == Op::kAlignmentPlot || request.op == Op::kUpsert) {
      // Plots always stream from a pump, never inline: even a fully warm
      // plot emits megabytes of tiles, and the pump's gate paces that
      // against this loop's write queue one tile at a time. Upserts comb
      // dirty chunks and compose braids -- milliseconds of compute that
      // must not block the event loop either.
      const std::uint64_t seq = conn.next_seq++;
      conn.pending.push_back(Pending{seq, false, {}});
      ++conn.inflight;
      {
        std::lock_guard lock(pump_mutex);
        pump_queue.push_back(Ticket{conn.id, seq, {}, std::move(request)});
      }
      pump_ready.notify_one();
      return;
    }
    std::shared_future<CachedKernelPtr> future;
    try {
      future = engine->entry_async(request.a, request.b);
    } catch (const EngineOverloaded& e) {
      // Scheduler backpressure: forward the retry hint as a typed frame.
      counters.retry_after.fetch_add(1, std::memory_order_relaxed);
      push_response(conn, overloaded_response(e.retry_after_ms(), e.what()));
      return;
    } catch (const std::exception& e) {
      push_response(conn, error_response(e.what()));
      return;
    }
    if (future.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
      // Warm path: answer on the event loop, no pump hop. Queries off a
      // cached entry are O(log n) descents -- microseconds, not stalls.
      Response response;
      try {
        response = answer_with_entry(*engine, *future.get(), request);
      } catch (const std::exception& e) {
        response = error_response(e.what());
      }
      counters.inline_answers.fetch_add(1, std::memory_order_relaxed);
      push_response(conn, std::move(response));
      return;
    }
    const std::uint64_t seq = conn.next_seq++;
    conn.pending.push_back(Pending{seq, false, {}});
    ++conn.inflight;
    {
      std::lock_guard lock(pump_mutex);
      pump_queue.push_back(Ticket{conn.id, seq, std::move(future), std::move(request)});
    }
    pump_ready.notify_one();
  }

  /// Queues a ready response in request order and flushes what it unblocks.
  void push_response(Conn& conn, Response response) {
    if (conn.dead) return;
    const std::uint64_t seq = conn.next_seq++;
    std::string bytes = frame_payload(encode_response(response));
    conn.pending.push_back(Pending{seq, true, std::move(bytes)});
    conn.pending_ready_bytes += conn.pending.back().bytes.size();
    flush(conn);
  }

  // -- write path -----------------------------------------------------------

  /// Moves ready FIFO-head slots into the flush buffer, writes what the
  /// socket takes, enforces the write-queue cap, arms EPOLLOUT for the rest.
  void flush(Conn& conn) {
    if (conn.dead) return;
    while (!conn.pending.empty()) {
      Pending& head = conn.pending.front();
      if (!head.bytes.empty()) {
        conn.pending_ready_bytes -= head.bytes.size();
        conn.out += head.bytes;
        head.bytes.clear();
      }
      if (!head.done) break;  // a stream's flushed head still holds its slot
      conn.pending.pop_front();
    }
    while (conn.out_off < conn.out.size()) {
      const long w = env->fd_write(conn.fd, conn.out.data() + conn.out_off,
                                   conn.out.size() - conn.out_off, conn.label);
      if (w > 0) {
        conn.out_off += static_cast<std::size_t>(w);
        continue;
      }
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      close_conn(conn.id);  // write error: the peer is gone
      return;
    }
    // Queued bytes are the unsent flush buffer plus framed responses parked
    // behind an unready slot. Past the cap, disconnect -- backpressure must
    // never become unbounded server memory. Checked before the drained-buffer
    // early return below: a cold compute holding the FIFO head parks every
    // later warm response in pending while out stays empty, and that shape
    // must be bounded exactly like a saturated socket.
    const std::size_t queued = queued_bytes(conn);
    if (queued > options.max_write_queue_bytes) {
      counters.write_queue_disconnects.fetch_add(1, std::memory_order_relaxed);
      close_conn(conn.id);
      return;
    }
    if (!conn.parked_gates.empty() && queued <= stream_watermark()) {
      // The socket drained: wake every stream paced on this connection.
      for (const auto& gate : conn.parked_gates) gate_signal(*gate, /*cancel=*/false);
      conn.parked_gates.clear();
      conn.stream_parked_ns = 0;
    }
    if (conn.out_off == conn.out.size()) {
      conn.out.clear();
      conn.out_off = 0;
      if (conn.want_write) {
        conn.want_write = false;
        rearm(conn, read_interest(conn));
      }
      if (conn.close_after_flush && conn.pending.empty()) close_conn(conn.id);
      return;
    }
    if (!conn.want_write) {
      conn.want_write = true;
      rearm(conn, read_interest(conn) | EPOLLOUT);
    }
  }

  // -- pump pool (cold-path futures) ---------------------------------------

  void pump_loop() {
    while (true) {
      Ticket ticket;
      {
        std::unique_lock lock(pump_mutex);
        pump_ready.wait(lock, [this] { return pump_stop || !pump_queue.empty(); });
        if (pump_queue.empty()) {
          if (pump_stop) return;
          continue;
        }
        ticket = std::move(pump_queue.front());
        pump_queue.pop_front();
      }
      if (ticket.request.op == Op::kAlignmentPlot) {
        stream_ticket(ticket);
        continue;
      }
      if (ticket.request.op == Op::kUpsert && !options.handler) {
        // Upserts comb dirty chunks through the scheduler and publish a new
        // corpus generation; scheduler backpressure surfaces as the same
        // typed RETRY_AFTER a cold query would get.
        Response response;
        try {
          if (options.corpus == nullptr) {
            response = error_response("upsert: no corpus attached");
          } else {
            const UpsertReport report = options.corpus->upsert_document(
                to_string(ticket.request.a), std::move(ticket.request.b));
            response.value = report.version;
            response.text = report.json();
          }
        } catch (const EngineOverloaded& e) {
          response = overloaded_response(e.retry_after_ms(), e.what());
          counters.retry_after.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::exception& e) {
          response = error_response(e.what());
        }
        counters.pump_answers.fetch_add(1, std::memory_order_relaxed);
        post_completion(ticket, frame_payload(encode_response(response)),
                        /*done=*/true, nullptr);
        continue;
      }
      Response response;
      bool abandoned = false;
      try {
        if (options.handler) {
          response = options.handler(ticket.request);
        } else {
          if (options.drain_inline) engine->drain();
          while (ticket.future.wait_for(std::chrono::milliseconds(50)) !=
                 std::future_status::ready) {
            if (hard_stop.load(std::memory_order_relaxed)) {
              abandoned = true;
              break;
            }
            if (options.drain_inline) engine->drain();
          }
          if (!abandoned) {
            response = answer_with_entry(*engine, *ticket.future.get(), ticket.request);
          }
        }
      } catch (const EngineOverloaded& e) {
        response = overloaded_response(e.retry_after_ms(), e.what());
        counters.retry_after.fetch_add(1, std::memory_order_relaxed);
      } catch (const std::exception& e) {
        response = error_response(e.what());
      }
      if (abandoned) continue;  // shutdown: the connection is being torn down
      counters.pump_answers.fetch_add(1, std::memory_order_relaxed);
      post_completion(ticket, frame_payload(encode_response(response)),
                      /*done=*/true, nullptr);
    }
  }

  void post_completion(const Ticket& ticket, std::string bytes, bool done,
                       std::shared_ptr<StreamGate> gate) {
    {
      std::lock_guard lock(completion_mutex);
      completions.push_back(
          Completion{ticket.conn_id, ticket.seq, std::move(bytes), done, std::move(gate)});
    }
    const std::uint64_t one = 1;
    (void)::write(completion_fd, &one, sizeof(one));
  }

  /// Streams a plot ticket: every tile posts as its own completion into the
  /// ticket's pending slot, and between tiles the pump blocks on a gate the
  /// event loop grants once the connection's write queue has drained below
  /// the watermark. The plot therefore crosses the reactor one bounded frame
  /// at a time -- the write-queue cap holds no matter how many cells the
  /// grid has.
  void stream_ticket(Ticket& ticket) {
    auto gate = std::make_shared<StreamGate>();
    bool cancelled = false;
    const auto post = [&](Response&& response) {
      const bool done = terminal_response_frame(response);
      std::string bytes;
      try {
        bytes = frame_payload(encode_response(response));
      } catch (const std::exception& e) {
        // An unencodable frame (stream-handler bug) still terminates the slot.
        cancelled = true;
        post_completion(ticket, frame_payload(encode_response(error_response(e.what()))),
                        /*done=*/true, nullptr);
        return false;
      }
      post_completion(ticket, std::move(bytes), done, done ? nullptr : gate);
      if (done) return true;
      std::unique_lock lock(gate->mutex);
      while (!gate->proceed && !gate->cancel) {
        if (hard_stop.load(std::memory_order_relaxed)) {
          cancelled = true;
          return false;
        }
        gate->cv.wait_for(lock, std::chrono::milliseconds(50));
      }
      if (gate->cancel) {
        cancelled = true;
        return false;
      }
      gate->proceed = false;
      return true;
    };
    try {
      if (options.handler) {
        if (options.stream_handler) {
          options.stream_handler(ticket.request,
                                 [&](Response&& r) { return post(std::move(r)); });
        } else {
          post(error_response("alignment plot: no stream handler"));
        }
      } else if (!ticket.request.plot) {
        post(error_response("plot request without a plot spec"));
      } else {
        if (options.drain_inline) engine->drain();
        engine->alignment_plot(
            ticket.request.a, ticket.request.b, *ticket.request.plot,
            [&](PlotTile&& tile) {
              Response r;
              r.tile = std::move(tile);
              return post(std::move(r));
            },
            options.drain_inline);
      }
    } catch (const EngineOverloaded& e) {
      counters.retry_after.fetch_add(1, std::memory_order_relaxed);
      if (!cancelled) post(overloaded_response(e.retry_after_ms(), e.what()));
    } catch (const std::exception& e) {
      if (!cancelled) post(error_response(e.what()));
    }
    counters.pump_answers.fetch_add(1, std::memory_order_relaxed);
  }

  void completions_ready() {
    std::uint64_t drainv = 0;
    (void)::read(completion_fd, &drainv, sizeof(drainv));
    std::vector<Completion> batch;
    {
      std::lock_guard lock(completion_mutex);
      batch.swap(completions);
    }
    for (Completion& c : batch) {
      const auto it = conns.find(c.conn_id);
      if (it == conns.end()) {  // connection died while computing
        if (c.gate) gate_signal(*c.gate, /*cancel=*/true);
        continue;
      }
      Conn& conn = *it->second;
      // Slots are contiguous seqs; index the deque directly. Stream frames
      // accumulate into their slot (flush drains the head's bytes even
      // before the slot is done).
      const std::uint64_t base = conn.pending.front().seq;
      Pending& slot = conn.pending[static_cast<std::size_t>(c.seq - base)];
      slot.bytes += c.bytes;
      conn.pending_ready_bytes += c.bytes.size();
      if (c.done) {
        slot.done = true;
        --conn.inflight;
      }
      flush(conn);
      if (c.gate) {
        // The pump is holding the next tile; grant it room now or park the
        // gate for flush to grant once the socket drains.
        const auto again = conns.find(c.conn_id);
        if (again == conns.end()) {
          gate_signal(*c.gate, /*cancel=*/true);
        } else if (queued_bytes(*again->second) <= stream_watermark()) {
          gate_signal(*c.gate, /*cancel=*/false);
        } else {
          Conn& live = *again->second;
          if (live.parked_gates.empty()) live.stream_parked_ns = env->now_ns();
          live.parked_gates.push_back(std::move(c.gate));
        }
      }
    }
  }

  // -- timeouts and drain ---------------------------------------------------

  void scan_timeouts() {
    if (options.idle_timeout_ms == 0 && options.read_timeout_ms == 0) return;
    const std::uint64_t now = env->now_ns();
    std::vector<std::uint64_t> doomed_idle;
    std::vector<std::uint64_t> doomed_read;
    std::vector<std::uint64_t> doomed_stall;
    for (const auto& [id, conn] : conns) {
      if (options.read_timeout_ms != 0 && conn->frame_start_ns != 0 &&
          now - conn->frame_start_ns > options.read_timeout_ms * 1'000'000) {
        doomed_read.push_back(id);
        continue;
      }
      // A paced stream parks below the disconnect cap, so a peer that stops
      // reading mid-plot never trips it; bound that stall with the
      // read-timeout clock instead.
      if (options.read_timeout_ms != 0 && conn->stream_parked_ns != 0 &&
          now - conn->stream_parked_ns > options.read_timeout_ms * 1'000'000) {
        doomed_stall.push_back(id);
        continue;
      }
      const bool idle = conn->pending.empty() && !conn->decoder.mid_frame() &&
                        conn->out_off == conn->out.size();
      if (options.idle_timeout_ms != 0 && idle &&
          now - conn->last_read_ns > options.idle_timeout_ms * 1'000'000) {
        doomed_idle.push_back(id);
      }
    }
    for (const std::uint64_t id : doomed_read) {
      counters.timeouts_read.fetch_add(1, std::memory_order_relaxed);
      close_conn(id);
    }
    for (const std::uint64_t id : doomed_stall) {
      counters.write_queue_disconnects.fetch_add(1, std::memory_order_relaxed);
      close_conn(id);
    }
    for (const std::uint64_t id : doomed_idle) {
      counters.timeouts_idle.fetch_add(1, std::memory_order_relaxed);
      close_conn(id);
    }
  }

  void begin_drain() {
    if (draining) return;
    draining = true;
    drain_deadline_ns = env->now_ns() + options.drain_timeout_ms * 1'000'000;
    ::close(listener);  // stop accepting; implicit EPOLL_CTL_DEL
    listener = -1;
    // Stop reading: in-flight requests finish, new bytes are ignored.
    for (const auto& [id, conn] : conns) {
      rearm(*conn, conn->want_write ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
    }
  }

  /// True when drain has nothing left to wait for (or ran out of patience).
  bool drain_finished() {
    if (!draining) return false;
    std::vector<std::uint64_t> done;
    for (const auto& [id, conn] : conns) {
      if (conn->pending.empty() && conn->out_off == conn->out.size()) {
        done.push_back(id);
      }
    }
    for (const std::uint64_t id : done) close_conn(id);
    if (conns.empty()) return true;
    if (env->now_ns() >= drain_deadline_ns) {
      std::vector<std::uint64_t> rest;
      rest.reserve(conns.size());
      for (const auto& [id, conn] : conns) rest.push_back(id);
      for (const std::uint64_t id : rest) close_conn(id);
      return true;
    }
    return false;
  }

  // -- the loop -------------------------------------------------------------

  void run() {
    for (int p = 0; p < std::max(1, options.pump_threads); ++p) {
      pumps.emplace_back([this] { pump_loop(); });
    }
    epoll_event events[256];
    std::uint64_t last_scan_ns = env->now_ns();
    while (true) {
      const int timeout_ms = draining ? 10 : 20;
      const int n = ::epoll_wait(epoll_fd, events, 256, timeout_ms);
      if (n < 0 && errno != EINTR) break;
      for (int i = 0; i < n; ++i) {
        const std::uint64_t tag = events[i].data.u64;
        const std::uint32_t ev = events[i].events;
        if (tag == kListenerTag) {
          if (!draining) accept_ready();
          continue;
        }
        if (tag == kStopTag) {
          std::uint64_t v = 0;
          (void)::read(stop_fd, &v, sizeof(v));
          begin_drain();
          continue;
        }
        if (tag == kCompletionTag) {
          completions_ready();
          continue;
        }
        const auto it = conns.find(tag);
        if (it == conns.end()) continue;  // closed earlier in this batch
        Conn& conn = *it->second;
        if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
          close_conn(tag);
          continue;
        }
        if ((ev & EPOLLOUT) != 0) flush(conn);
        // flush may have closed the conn; re-check before reading.
        if ((ev & EPOLLIN) != 0 && conns.count(tag) != 0 && !draining) {
          read_ready(conn);
        }
      }
      graveyard.clear();  // no handler is live past the events loop
      const std::uint64_t now = env->now_ns();
      if (now - last_scan_ns >= 10'000'000) {  // scan timeouts every ~10ms
        last_scan_ns = now;
        scan_timeouts();
      }
      if (drain_finished()) break;
    }
    // Stop the pumps; abandoned tickets belong to connections already torn
    // down (or about to be -- close_fds() in the destructor sweeps the rest).
    hard_stop.store(true, std::memory_order_relaxed);
    {
      std::lock_guard lock(pump_mutex);
      pump_stop = true;
    }
    pump_ready.notify_all();
    for (std::thread& t : pumps) t.join();
    pumps.clear();
  }

  void request_stop() const {
    const std::uint64_t one = 1;
    (void)::write(stop_fd, &one, sizeof(one));
  }
};

FrontendServer::FrontendServer(ComparisonEngine& engine, FrontendOptions options)
    : impl_(std::make_unique<Impl>(&engine, std::move(options))) {}

FrontendServer::FrontendServer(FrontendOptions options)
    : impl_(std::make_unique<Impl>(nullptr, std::move(options))) {}

FrontendServer::~FrontendServer() = default;

int FrontendServer::port() const { return impl_->bound_port; }

void FrontendServer::run() { impl_->run(); }

void FrontendServer::request_stop() { impl_->request_stop(); }

FrontendStats FrontendServer::stats() const { return impl_->counters.snapshot(); }

// ---------------------------------------------------------------------------
// ThreadedFrontend: thread-per-connection with owned lifetimes.

struct ThreadedFrontend::Impl {
  struct Session {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  ComparisonEngine& engine;
  FrontendOptions options;
  Env* env;
  Counters counters;
  int listener = -1;
  int bound_port = 0;
  std::atomic<bool> stop_requested{false};

  std::mutex sessions_mutex;
  std::vector<std::unique_ptr<Session>> sessions;
  std::uint64_t next_session_id = 1;  // only the accept loop touches it

  Impl(ComparisonEngine& eng, FrontendOptions opts)
      : engine(eng), options(std::move(opts)), env(options.env ? options.env : &real_env()) {
    raise_fd_limit();
    auto [fd, port] = make_listener(options.port, options.listen_backlog,
                                    /*non_blocking=*/false);
    listener = fd;
    bound_port = port;
  }

  ~Impl() {
    if (listener >= 0) ::close(listener);
  }

  Response handle(const Request& request) {
    Response response;
    try {
      switch (request.op) {
        case Op::kPing:
          break;
        case Op::kStats:
          response.text = stats_json(engine.stats(), counters.snapshot());
          break;
        case Op::kHealth:
          response.text = health_json(engine.stats());
          break;
        case Op::kShardCtl:
          response = error_response("shardctl: not a router");
          break;
        case Op::kUpsert: {
          // `a` carries the document id, never sequence data: no dna pack.
          if (options.corpus == nullptr) {
            response = error_response("upsert: no corpus attached");
          } else {
            const UpsertReport report = options.corpus->upsert_document(
                to_string(request.a), ingest(options.dna, request.b));
            response.value = report.version;
            response.text = report.json();
          }
          break;
        }
        default: {
          const Sequence a = ingest(options.dna, request.a);
          const Sequence b = ingest(options.dna, request.b);
          auto future = engine.entry_async(a, b);
          if (options.drain_inline) engine.drain();
          response = answer_with_entry(engine, *future.get(), request);
          break;
        }
      }
    } catch (const EngineOverloaded& e) {
      counters.retry_after.fetch_add(1, std::memory_order_relaxed);
      response = overloaded_response(e.retry_after_ms(), e.what());
    } catch (const std::exception& e) {
      response = error_response(e.what());
    }
    return response;
  }

  bool write_all(int fd, std::string_view bytes, const std::string& label) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const long w = env->fd_write(fd, bytes.data() + off, bytes.size() - off, label);
      if (w <= 0) return false;
      off += static_cast<std::size_t>(w);
    }
    return true;
  }

  /// Streams a plot on the session thread: write_all blocks on the socket,
  /// which is the backpressure -- a slow reader slows the compute instead of
  /// buffering tiles. Returns false when the connection is gone.
  bool stream_plot(int fd, const Request& request, const std::string& label) {
    bool ok = true;
    try {
      if (!request.plot) throw std::out_of_range("plot request without a plot spec");
      const Sequence a = ingest(options.dna, request.a);
      const Sequence b = ingest(options.dna, request.b);
      engine.alignment_plot(
          a, b, *request.plot,
          [&](PlotTile&& tile) {
            Response response;
            response.tile = std::move(tile);
            ok = write_all(fd, frame_payload(encode_response(response)), label);
            return ok;
          },
          options.drain_inline);
    } catch (const EngineOverloaded& e) {
      counters.retry_after.fetch_add(1, std::memory_order_relaxed);
      ok = write_all(fd,
                     frame_payload(encode_response(
                         overloaded_response(e.retry_after_ms(), e.what()))),
                     label) &&
           ok;
    } catch (const std::exception& e) {
      ok = write_all(fd, frame_payload(encode_response(error_response(e.what()))),
                     label) &&
           ok;
    }
    return ok;
  }

  void session_loop(Session& session, const std::string& label) {
    FrameDecoder decoder;
    char buf[1 << 16];
    bool open = true;
    while (open) {
      const long n = env->fd_read(session.fd, buf, sizeof(buf), label);
      if (n <= 0) break;  // EOF (graceful drain lands here too) or error
      try {
        decoder.feed(std::string_view(buf, static_cast<std::size_t>(n)),
                     [&](std::string_view payload, bool spanned) {
                       counters.frames.fetch_add(1, std::memory_order_relaxed);
                       if (spanned) {
                         counters.partial_frames.fetch_add(1,
                                                           std::memory_order_relaxed);
                       }
                       Response response;
                       bool answered = false;
                       try {
                         Request request = decode_request(payload);
                         if (request.op == Op::kAlignmentPlot) {
                           counters.inline_answers.fetch_add(
                               1, std::memory_order_relaxed);
                           if (!stream_plot(session.fd, request, label)) open = false;
                           answered = true;
                         } else {
                           response = handle(request);
                         }
                       } catch (const ProtocolError& e) {
                         counters.protocol_errors.fetch_add(
                             1, std::memory_order_relaxed);
                         response = error_response(e.what());
                       }
                       if (answered) return;
                       counters.inline_answers.fetch_add(1, std::memory_order_relaxed);
                       if (!write_all(session.fd,
                                      frame_payload(encode_response(response)),
                                      label)) {
                         open = false;
                       }
                     });
      } catch (const ProtocolError& e) {
        counters.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        (void)write_all(session.fd, frame_payload(encode_response(error_response(e.what()))),
                        label);
        break;
      }
    }
    // The fd stays open until reap() has joined this thread: closing it here
    // would race the reaper's shutdown(2) on the same descriptor (and the
    // kernel could recycle the number under it). The loop only marks done.
    counters.active.fetch_sub(1, std::memory_order_relaxed);
    counters.closed.fetch_add(1, std::memory_order_relaxed);
    session.done.store(true, std::memory_order_release);
  }

  /// Joins finished sessions; with `all`, shuts every live session down for
  /// reading first (it finishes its in-flight request, flushes and exits)
  /// and joins everything -- the graceful drain.
  void reap(bool all) {
    std::vector<std::unique_ptr<Session>> to_join;
    {
      std::lock_guard lock(sessions_mutex);
      if (all) {
        for (const auto& s : sessions) {
          if (s->fd >= 0) ::shutdown(s->fd, SHUT_RD);
        }
        to_join.swap(sessions);
      } else {
        auto it = sessions.begin();
        while (it != sessions.end()) {
          if ((*it)->done.load(std::memory_order_acquire)) {
            to_join.push_back(std::move(*it));
            it = sessions.erase(it);
          } else {
            ++it;
          }
        }
      }
    }
    for (const auto& s : to_join) {
      if (s->thread.joinable()) s->thread.join();
      if (s->fd >= 0) ::close(s->fd);  // sole owner once the thread is joined
    }
  }

  void run() {
    while (!stop_requested.load(std::memory_order_relaxed)) {
      const int fd = ::accept(listener, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // listener shut down (request_stop) or failed
      }
      const int nodelay = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
      reap(/*all=*/false);
      if (counters.active.load(std::memory_order_relaxed) >= options.max_connections) {
        counters.shed.fetch_add(1, std::memory_order_relaxed);
        const std::string frame = frame_payload(encode_response(overloaded_response(
            options.admission_retry_ms, "connection limit reached")));
        (void)env->fd_write(fd, frame.data(), frame.size(), "conn:shed");
        counters.retry_after.fetch_add(1, std::memory_order_relaxed);
        ::close(fd);
        continue;
      }
      counters.accepted.fetch_add(1, std::memory_order_relaxed);
      counters.active.fetch_add(1, std::memory_order_relaxed);
      auto session = std::make_unique<Session>();
      session->fd = fd;
      Session* raw = session.get();
      // A monotonic session id, not the fd: fd numbers recycle after close,
      // which would let a FaultPlan rule aimed at one connection fire on a
      // later unrelated session.
      const std::string label = "conn:" + std::to_string(next_session_id++);
      session->thread = std::thread([this, raw, label] { session_loop(*raw, label); });
      std::lock_guard lock(sessions_mutex);
      sessions.push_back(std::move(session));
    }
    reap(/*all=*/true);  // graceful drain: no session outlives run()
  }

  void request_stop() {
    stop_requested.store(true, std::memory_order_relaxed);
    // shutdown(2) is async-signal-safe and makes the blocking accept fail.
    ::shutdown(listener, SHUT_RDWR);
  }
};

ThreadedFrontend::ThreadedFrontend(ComparisonEngine& engine, FrontendOptions options)
    : impl_(std::make_unique<Impl>(engine, std::move(options))) {}

ThreadedFrontend::~ThreadedFrontend() = default;

int ThreadedFrontend::port() const { return impl_->bound_port; }

void ThreadedFrontend::run() { impl_->run(); }

void ThreadedFrontend::request_stop() { impl_->request_stop(); }

FrontendStats ThreadedFrontend::stats() const { return impl_->counters.snapshot(); }

}  // namespace semilocal

#include "engine/key.hpp"

#include <array>

namespace semilocal {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

}  // namespace

std::uint64_t sequence_digest(SequenceView s) {
  std::uint64_t hash = kFnvOffset;
  for (const Symbol sym : s) {
    auto v = static_cast<std::uint32_t>(sym);
    for (int byte = 0; byte < 4; ++byte) {
      hash ^= v & 0xffU;
      hash *= kFnvPrime;
      v >>= 8;
    }
  }
  return hash;
}

PairKey make_pair_key(SequenceView a, SequenceView b) {
  return PairKey{.hash_a = sequence_digest(a),
                 .hash_b = sequence_digest(b),
                 .len_a = static_cast<Index>(a.size()),
                 .len_b = static_cast<Index>(b.size())};
}

std::string PairKey::hex() const {
  static constexpr std::array<char, 16> kDigits = {'0', '1', '2', '3', '4', '5', '6', '7',
                                                   '8', '9', 'a', 'b', 'c', 'd', 'e', 'f'};
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(15 - i)] = kDigits[(hash_a >> (4 * i)) & 0xf];
    out[static_cast<std::size_t>(31 - i)] = kDigits[(hash_b >> (4 * i)) & 0xf];
  }
  return out;
}

}  // namespace semilocal

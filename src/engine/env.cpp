#include "engine/env.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <algorithm>
#include <filesystem>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define SEMILOCAL_HAVE_MMAP 1
#endif

namespace semilocal {

namespace fs = std::filesystem;

const char* env_op_name(EnvOp op) {
  switch (op) {
    case EnvOp::kRead:
      return "read";
    case EnvOp::kWrite:
      return "write";
    case EnvOp::kRename:
      return "rename";
    case EnvOp::kRemove:
      return "remove";
    case EnvOp::kList:
      return "list";
    case EnvOp::kMap:
      return "map";
    case EnvOp::kSockRead:
      return "sockread";
    case EnvOp::kSockWrite:
      return "sockwrite";
  }
  return "unknown";
}

// The default fd seam is a raw passthrough (EINTR retried); every Env shares
// it unless a decorator wants to interfere. Errno is the out-of-band channel
// on purpose -- the frontend's event loop speaks EAGAIN natively.
long Env::fd_read(int fd, void* buf, std::size_t n, std::string_view /*label*/) {
#if defined(__unix__) || defined(__APPLE__)
  while (true) {
    const ssize_t r = ::read(fd, buf, n);
    if (r >= 0 || errno != EINTR) return static_cast<long>(r);
  }
#else
  (void)fd;
  (void)buf;
  (void)n;
  errno = ENOSYS;
  return -1;
#endif
}

long Env::fd_write(int fd, const void* buf, std::size_t n, std::string_view /*label*/) {
#if defined(__unix__) || defined(__APPLE__)
  while (true) {
    const ssize_t w = ::write(fd, buf, n);
    if (w >= 0 || errno != EINTR) return static_cast<long>(w);
  }
#else
  (void)fd;
  (void)buf;
  (void)n;
  errno = ENOSYS;
  return -1;
#endif
}

namespace {

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

#ifdef SEMILOCAL_HAVE_MMAP
class RealMappedFile final : public MappedFile {
 public:
  RealMappedFile(void* addr, std::size_t length) : addr_(addr), length_(length) {
    if (addr_ != nullptr) {
      view_ = std::string_view(static_cast<const char*>(addr_), length_);
    }
  }
  ~RealMappedFile() override {
    if (addr_ != nullptr) ::munmap(addr_, length_);
  }

 private:
  void* addr_;
  std::size_t length_;
};
#endif

/// A mapping backed by plain heap bytes: FaultyEnv's torn maps, and the
/// empty-file case (mmap(2) rejects zero-length mappings).
class HeapMappedFile final : public MappedFile {
 public:
  explicit HeapMappedFile(std::string bytes) : bytes_(std::move(bytes)) {
    view_ = bytes_;
  }

 private:
  std::string bytes_;
};

class RealEnv final : public Env {
 public:
  std::string read_file(const std::string& path) override {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw EnvError("read_file: cannot open " + path);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (in.bad()) throw EnvError("read_file: read failed on " + path);
    return data;
  }

  MappedFilePtr map_file(const std::string& path) override {
#ifdef SEMILOCAL_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      throw EnvError("map_file: cannot open " + path + ": " + std::strerror(errno));
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
      ::close(fd);
      throw EnvError("map_file: cannot stat " + path);
    }
    const auto size = static_cast<std::size_t>(st.st_size);
    if (size == 0) {
      ::close(fd);
      return std::make_shared<HeapMappedFile>(std::string());
    }
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (addr == MAP_FAILED) {
      throw EnvError("map_file: mmap failed on " + path + ": " + std::strerror(errno));
    }
    return std::make_shared<RealMappedFile>(addr, size);
#else
    throw EnvError("map_file: no mmap on this platform (" + path + ")");
#endif
  }

  void write_file(const std::string& path, std::string_view data) override {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw EnvError("write_file: cannot open " + path);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    out.flush();
    if (!out) throw EnvError("write_file: write failed on " + path);
  }

  void rename_file(const std::string& from, const std::string& to) override {
    std::error_code ec;
    fs::rename(from, to, ec);
    if (ec) {
      throw EnvError("rename_file: " + from + " -> " + to + ": " + ec.message());
    }
  }

  void remove_file(const std::string& path) override {
    std::error_code ec;
    fs::remove(path, ec);  // removing a missing file reports success
    if (ec) throw EnvError("remove_file: " + path + ": " + ec.message());
  }

  std::vector<std::string> list_dir(const std::string& dir) override {
    std::vector<std::string> names;
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec) {
      if (ec == std::errc::no_such_file_or_directory) return names;
      throw EnvError("list_dir: " + dir + ": " + ec.message());
    }
    for (const auto& entry : it) names.push_back(entry.path().filename().string());
    std::sort(names.begin(), names.end());  // directory order is fs-dependent
    return names;
  }

  bool exists(const std::string& path) override {
    std::error_code ec;
    return fs::exists(path, ec);
  }

  bool create_dirs(const std::string& dir) override {
    std::error_code ec;
    fs::create_directories(dir, ec);
    return !ec;
  }

  std::uint64_t now_ns() override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

}  // namespace

Env& real_env() {
  static RealEnv env;
  return env;
}

FaultyEnv::FaultyEnv(FaultPlan plan, Env* base)
    : plan_(std::move(plan)),
      base_(base ? base : &real_env()),
      rng_(plan_.seed),
      states_(plan_.rules.size()) {}

FaultyEnv::Fired FaultyEnv::arbitrate(EnvOp op, const std::string& path) {
  std::lock_guard lock(mutex_);
  const std::uint64_t seq = op_seq_++;
  for (std::size_t r = 0; r < plan_.rules.size(); ++r) {
    const FaultRule& rule = plan_.rules[r];
    if (rule.op != op) continue;
    if (!rule.path_substring.empty() &&
        path.find(rule.path_substring) == std::string::npos) {
      continue;
    }
    const std::uint64_t match = states_[r].matched++;
    if (match < rule.skip) continue;
    if (match - rule.skip >= rule.count) continue;
    // Armed. Probability draws come from the plan RNG in call order, so the
    // decision stream is a pure function of (seed, call sequence).
    if (rule.probability < 1.0 &&
        std::uniform_real_distribution<double>(0.0, 1.0)(rng_) >= rule.probability) {
      continue;
    }
    Fired fired;
    fired.fired = true;
    fired.short_write = op == EnvOp::kWrite || op == EnvOp::kSockRead ||
                                op == EnvOp::kSockWrite
                            ? rule.short_write_bytes
                            : 0;
    fired.torn_map = op == EnvOp::kMap ? rule.torn_map_bytes : 0;
    fired.message = "FaultyEnv: " + rule.message + " (" + std::string(env_op_name(op)) +
                    " " + basename_of(path) + ")";
    std::string detail = rule.message;
    if (fired.short_write > 0) {
      detail += " short_write=" + std::to_string(fired.short_write);
    }
    if (fired.torn_map > 0) {
      detail += " torn_map=" + std::to_string(fired.torn_map);
    }
    events_.push_back(FaultEvent{.op_seq = seq,
                                 .rule = r,
                                 .op = op,
                                 .path_base = basename_of(path),
                                 .detail = std::move(detail)});
    return fired;
  }
  return Fired{};
}

std::string FaultyEnv::read_file(const std::string& path) {
  const Fired fired = arbitrate(EnvOp::kRead, path);
  if (fired.fired) throw EnvError(fired.message, /*injected=*/true);
  return base_->read_file(path);
}

MappedFilePtr FaultyEnv::map_file(const std::string& path) {
  const Fired fired = arbitrate(EnvOp::kMap, path);
  if (!fired.fired) return base_->map_file(path);
  if (fired.torn_map == 0) throw EnvError(fired.message, /*injected=*/true);
  // A torn mapping: the map call "succeeds" but only the first torn_map
  // bytes are real; the rest read as zeros, like pages whose backing write
  // never reached disk. Served, not thrown -- the reader's checksums have
  // to notice. The base read bypasses arbitrate() on purpose: it is part of
  // this one injected map op, not a second env call, so traces stay
  // byte-identical between runs.
  std::string bytes = base_->read_file(path);
  if (fired.torn_map < bytes.size()) {
    std::fill(bytes.begin() + static_cast<std::ptrdiff_t>(fired.torn_map),
              bytes.end(), '\0');
  }
  return std::make_shared<HeapMappedFile>(std::move(bytes));
}

void FaultyEnv::write_file(const std::string& path, std::string_view data) {
  const Fired fired = arbitrate(EnvOp::kWrite, path);
  if (fired.fired) {
    // A short write tears the file first -- the partial really lands on the
    // base env, exactly like ENOSPC after short_write bytes.
    if (fired.short_write > 0 && fired.short_write < data.size()) {
      try {
        base_->write_file(path, data.substr(0, fired.short_write));
      } catch (const EnvError&) {
        // The injected fault is the one being reported.
      }
    }
    throw EnvError(fired.message, /*injected=*/true);
  }
  base_->write_file(path, data);
}

void FaultyEnv::rename_file(const std::string& from, const std::string& to) {
  const Fired fired = arbitrate(EnvOp::kRename, from);
  if (fired.fired) throw EnvError(fired.message, /*injected=*/true);
  base_->rename_file(from, to);
}

void FaultyEnv::remove_file(const std::string& path) {
  const Fired fired = arbitrate(EnvOp::kRemove, path);
  if (fired.fired) throw EnvError(fired.message, /*injected=*/true);
  base_->remove_file(path);
}

std::vector<std::string> FaultyEnv::list_dir(const std::string& dir) {
  const Fired fired = arbitrate(EnvOp::kList, dir);
  if (fired.fired) throw EnvError(fired.message, /*injected=*/true);
  return base_->list_dir(dir);
}

long FaultyEnv::fd_read(int fd, void* buf, std::size_t n, std::string_view label) {
  const Fired fired = arbitrate(EnvOp::kSockRead, std::string(label));
  if (fired.fired) {
    // short_write > 0: deterministic partial read -- the transfer is capped,
    // the bytes are real, and the decoder must resume from the torn point.
    if (fired.short_write > 0) {
      return base_->fd_read(fd, buf, std::min(n, fired.short_write), label);
    }
    errno = EIO;
    return -1;
  }
  return base_->fd_read(fd, buf, n, label);
}

long FaultyEnv::fd_write(int fd, const void* buf, std::size_t n, std::string_view label) {
  const Fired fired = arbitrate(EnvOp::kSockWrite, std::string(label));
  if (fired.fired) {
    if (fired.short_write > 0) {
      return base_->fd_write(fd, buf, std::min(n, fired.short_write), label);
    }
    errno = EIO;
    return -1;
  }
  return base_->fd_write(fd, buf, n, label);
}

bool FaultyEnv::exists(const std::string& path) { return base_->exists(path); }

bool FaultyEnv::create_dirs(const std::string& dir) { return base_->create_dirs(dir); }

std::uint64_t FaultyEnv::now_ns() {
  std::lock_guard lock(mutex_);
  fake_clock_ns_ += plan_.clock_step_ns;
  return fake_clock_ns_;
}

std::vector<FaultEvent> FaultyEnv::trace() const {
  std::lock_guard lock(mutex_);
  return events_;
}

std::string FaultyEnv::trace_text() const {
  std::lock_guard lock(mutex_);
  std::string out;
  for (const FaultEvent& e : events_) {
    out += '#' + std::to_string(e.op_seq) + " rule" + std::to_string(e.rule) + ' ' +
           env_op_name(e.op) + ' ' + e.path_base + ": " + e.detail + '\n';
  }
  return out;
}

std::uint64_t FaultyEnv::faults_injected() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

}  // namespace semilocal

#include "engine/corpus.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace semilocal {

CorpusBuildReport precompute_corpus(const std::vector<FastaRecord>& records,
                                    KernelStore& store, const SemiLocalOptions& opts,
                                    bool parallel) {
  std::vector<Sequence> packed;
  packed.reserve(records.size());
  for (const FastaRecord& record : records) packed.push_back(pack_dna(record.residues));

  CorpusBuildReport report;
  std::vector<SequencePair> pairs;  // the subset of pairs needing compute
  for (std::size_t i = 0; i < records.size(); ++i) {
    for (std::size_t j = i + 1; j < records.size(); ++j) {
      const PairKey key = make_pair_key(packed[i], packed[j]);
      report.entries.push_back(CorpusIndexEntry{
          .id_a = records[i].id,
          .id_b = records[j].id,
          .m = static_cast<Index>(packed[i].size()),
          .n = static_cast<Index>(packed[j].size()),
          .key_hex = key.hex()});
      if (store.on_disk(key)) {
        ++report.reused;
        continue;
      }
      pairs.push_back({packed[i], packed[j]});
    }
  }

  // Chunked so a large corpus never holds more than one batch of kernels in
  // memory on top of the store cache.
  constexpr std::size_t kChunk = 256;
  SemiLocalOptions batch_opts = opts;
  batch_opts.parallel = parallel;
  for (std::size_t base = 0; base < pairs.size(); base += kChunk) {
    const std::size_t count = std::min(kChunk, pairs.size() - base);
    auto kernels = semi_local_kernel_batch({pairs.data() + base, count}, batch_opts);
    for (std::size_t k = 0; k < count; ++k) {
      const SequencePair& pair = pairs[base + k];
      store.put(make_pair_key(pair.a, pair.b),
                std::make_shared<const CachedKernel>(
                    std::make_shared<const SemiLocalKernel>(std::move(kernels[k]))));
      ++report.computed;
    }
    // Give pairs that hit a transient write fault another chance in-run.
    store.retry_pending();
  }
  store.retry_pending();
  // Whatever this run computed but could not land on disk is its durability
  // loss; surface it instead of pretending the corpus is fully persisted.
  if (store.persists()) {
    for (const SequencePair& pair : pairs) {
      if (!store.on_disk(make_pair_key(pair.a, pair.b))) ++report.persist_failures;
    }
  }
  return report;
}

void write_corpus_index(const std::string& path,
                        const std::vector<CorpusIndexEntry>& entries, Env* env) {
  if (env == nullptr) env = &real_env();
  std::string out = "#id_a\tid_b\tm\tn\tkey\n";
  for (const CorpusIndexEntry& e : entries) {
    out += e.id_a + '\t' + e.id_b + '\t' + std::to_string(e.m) + '\t' +
           std::to_string(e.n) + '\t' + e.key_hex + '\n';
  }
  try {
    env->write_file(path, out);
  } catch (const EnvError& e) {
    throw std::runtime_error(std::string("write_corpus_index: ") + e.what());
  }
}

std::vector<CorpusIndexEntry> read_corpus_index(const std::string& path, Env* env) {
  if (env == nullptr) env = &real_env();
  std::string data;
  try {
    data = env->read_file(path);
  } catch (const EnvError& e) {
    throw std::runtime_error(std::string("read_corpus_index: ") + e.what());
  }
  std::vector<CorpusIndexEntry> out;
  std::istringstream in(data);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    CorpusIndexEntry entry;
    if (!(fields >> entry.id_a >> entry.id_b >> entry.m >> entry.n >> entry.key_hex)) {
      throw std::runtime_error("read_corpus_index: malformed line: " + line);
    }
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace semilocal

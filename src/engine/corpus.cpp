#include "engine/corpus.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace semilocal {

CorpusBuildReport precompute_corpus(const std::vector<FastaRecord>& records,
                                    KernelStore& store, const SemiLocalOptions& opts,
                                    bool parallel) {
  std::vector<Sequence> packed;
  packed.reserve(records.size());
  for (const FastaRecord& record : records) packed.push_back(pack_dna(record.residues));

  CorpusBuildReport report;
  std::vector<SequencePair> pairs;  // the subset of pairs needing compute
  for (std::size_t i = 0; i < records.size(); ++i) {
    for (std::size_t j = i + 1; j < records.size(); ++j) {
      const PairKey key = make_pair_key(packed[i], packed[j]);
      report.entries.push_back(CorpusIndexEntry{
          .id_a = records[i].id,
          .id_b = records[j].id,
          .m = static_cast<Index>(packed[i].size()),
          .n = static_cast<Index>(packed[j].size()),
          .key_hex = key.hex()});
      if (store.on_disk(key)) {
        ++report.reused;
        continue;
      }
      pairs.push_back({packed[i], packed[j]});
    }
  }

  // Chunked so a large corpus never holds more than one batch of kernels in
  // memory on top of the store cache.
  constexpr std::size_t kChunk = 256;
  SemiLocalOptions batch_opts = opts;
  batch_opts.parallel = parallel;
  for (std::size_t base = 0; base < pairs.size(); base += kChunk) {
    const std::size_t count = std::min(kChunk, pairs.size() - base);
    auto kernels = semi_local_kernel_batch({pairs.data() + base, count}, batch_opts);
    for (std::size_t k = 0; k < count; ++k) {
      const SequencePair& pair = pairs[base + k];
      store.put(make_pair_key(pair.a, pair.b),
                std::make_shared<const CachedKernel>(
                    std::make_shared<const SemiLocalKernel>(std::move(kernels[k]))));
      ++report.computed;
    }
  }
  return report;
}

void write_corpus_index(const std::string& path,
                        const std::vector<CorpusIndexEntry>& entries) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_corpus_index: cannot open " + path);
  out << "#id_a\tid_b\tm\tn\tkey\n";
  for (const CorpusIndexEntry& e : entries) {
    out << e.id_a << '\t' << e.id_b << '\t' << e.m << '\t' << e.n << '\t' << e.key_hex
        << '\n';
  }
  if (!out) throw std::runtime_error("write_corpus_index: write failed");
}

std::vector<CorpusIndexEntry> read_corpus_index(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_corpus_index: cannot open " + path);
  std::vector<CorpusIndexEntry> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    CorpusIndexEntry entry;
    if (!(fields >> entry.id_a >> entry.id_b >> entry.m >> entry.n >> entry.key_hex)) {
      throw std::runtime_error("read_corpus_index: malformed line: " + line);
    }
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace semilocal

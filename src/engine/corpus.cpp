#include "engine/corpus.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace semilocal {

CorpusBuildReport precompute_corpus(const std::vector<FastaRecord>& records,
                                    KernelStore& store, const SemiLocalOptions& opts,
                                    bool parallel) {
  std::vector<Sequence> packed;
  packed.reserve(records.size());
  for (const FastaRecord& record : records) packed.push_back(pack_dna(record.residues));

  CorpusBuildReport report;
  std::vector<SequencePair> pairs;  // the subset of pairs needing compute
  for (std::size_t i = 0; i < records.size(); ++i) {
    for (std::size_t j = i + 1; j < records.size(); ++j) {
      const PairKey key = make_pair_key(packed[i], packed[j]);
      report.entries.push_back(CorpusIndexEntry{
          .id_a = records[i].id,
          .id_b = records[j].id,
          .m = static_cast<Index>(packed[i].size()),
          .n = static_cast<Index>(packed[j].size()),
          .key_hex = key.hex()});
      if (store.on_disk(key)) {
        ++report.reused;
        continue;
      }
      pairs.push_back({packed[i], packed[j]});
    }
  }

  // Chunked so a large corpus never holds more than one batch of kernels in
  // memory on top of the store cache.
  constexpr std::size_t kChunk = 256;
  SemiLocalOptions batch_opts = opts;
  batch_opts.parallel = parallel;
  for (std::size_t base = 0; base < pairs.size(); base += kChunk) {
    const std::size_t count = std::min(kChunk, pairs.size() - base);
    auto kernels = semi_local_kernel_batch({pairs.data() + base, count}, batch_opts);
    for (std::size_t k = 0; k < count; ++k) {
      const SequencePair& pair = pairs[base + k];
      store.put(make_pair_key(pair.a, pair.b),
                std::make_shared<const CachedKernel>(
                    std::make_shared<const SemiLocalKernel>(std::move(kernels[k]))));
      ++report.computed;
    }
    // Give pairs that hit a transient write fault another chance in-run.
    store.retry_pending();
  }
  store.retry_pending();
  // Whatever this run computed but could not land on disk is its durability
  // loss; surface it instead of pretending the corpus is fully persisted.
  if (store.persists()) {
    for (const SequencePair& pair : pairs) {
      if (!store.on_disk(make_pair_key(pair.a, pair.b))) ++report.persist_failures;
    }
  }
  return report;
}

namespace {

std::string serialize_corpus_index(const std::vector<CorpusIndexEntry>& entries,
                                   std::uint64_t generation,
                                   const std::string& extra_header = {}) {
  std::string out = "#generation\t" + std::to_string(generation) + '\n';
  out += extra_header;
  out += "#id_a\tid_b\tm\tn\tkey\tver_a\tver_b\n";
  for (const CorpusIndexEntry& e : entries) {
    out += e.id_a + '\t' + e.id_b + '\t' + std::to_string(e.m) + '\t' +
           std::to_string(e.n) + '\t' + e.key_hex + '\t' +
           std::to_string(e.ver_a) + '\t' + std::to_string(e.ver_b) + '\n';
  }
  return out;
}

}  // namespace

void write_corpus_index(const std::string& path,
                        const std::vector<CorpusIndexEntry>& entries, Env* env,
                        std::uint64_t generation) {
  if (env == nullptr) env = &real_env();
  try {
    env->write_file(path, serialize_corpus_index(entries, generation));
  } catch (const EnvError& e) {
    throw std::runtime_error(std::string("write_corpus_index: ") + e.what());
  }
}

void publish_corpus_index(const std::string& path,
                          const std::vector<CorpusIndexEntry>& entries,
                          std::uint64_t generation, Env* env,
                          const std::string& extra_header) {
  if (env == nullptr) env = &real_env();
  const std::string tmp = path + ".tmp";
  try {
    env->write_file(tmp, serialize_corpus_index(entries, generation, extra_header));
    env->rename_file(tmp, path);
  } catch (const EnvError& e) {
    // The torn temp file (if any) must not shadow a later publish attempt.
    try {
      env->remove_file(tmp);
    } catch (const EnvError&) {
    }
    throw std::runtime_error(std::string("publish_corpus_index: ") + e.what());
  }
}

std::vector<CorpusIndexEntry> read_corpus_index(const std::string& path, Env* env,
                                                std::uint64_t* generation) {
  if (env == nullptr) env = &real_env();
  if (generation != nullptr) *generation = 0;
  std::string data;
  try {
    data = env->read_file(path);
  } catch (const EnvError& e) {
    throw std::runtime_error(std::string("read_corpus_index: ") + e.what());
  }
  std::vector<CorpusIndexEntry> out;
  std::istringstream in(data);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      constexpr std::string_view kGenTag = "#generation\t";
      if (generation != nullptr && line.rfind(kGenTag, 0) == 0) {
        *generation = std::stoull(line.substr(kGenTag.size()));
      }
      continue;
    }
    std::istringstream fields(line);
    CorpusIndexEntry entry;
    if (!(fields >> entry.id_a >> entry.id_b >> entry.m >> entry.n >> entry.key_hex)) {
      throw std::runtime_error("read_corpus_index: malformed line: " + line);
    }
    // Version columns are absent in pre-versioning indexes; default to 0.
    if (!(fields >> entry.ver_a >> entry.ver_b)) {
      entry.ver_a = 0;
      entry.ver_b = 0;
    }
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace semilocal

// Persistent kernel corpus with an in-memory LRU front.
//
// A store is a directory of content-addressed kernel files
// (`<pair-key-hex>.slk`, the core/serialize format) fronted by a
// byte-budgeted LRU cache. Lookups probe the cache first, then the
// directory; disk hits are promoted into the cache so a working set served
// repeatedly settles into pure memory hits. Writes go through a
// temp-file + rename so a crashed or killed writer never leaves a torn
// kernel behind for a reader to choke on.
//
// Thread-safe: one mutex serializes cache metadata, while serialization I/O
// happens outside the lock (the file an entry maps to is immutable once
// renamed into place).
#pragma once

#include <cstddef>
#include <mutex>
#include <optional>
#include <string>

#include "engine/lru_cache.hpp"

namespace semilocal {

struct KernelStoreOptions {
  /// Directory of persisted kernels. Empty disables the disk tier (the
  /// store is then just the shared LRU cache).
  std::string dir;
  /// In-memory LRU budget.
  std::size_t cache_bytes = std::size_t{64} << 20;
  /// Persist kernels inserted via put() to the disk tier.
  bool persist = true;
};

struct KernelStoreStats {
  LruCacheStats cache;
  std::uint64_t disk_hits = 0;    ///< found on disk after a cache miss
  std::uint64_t disk_errors = 0;  ///< unreadable/corrupt files (treated as misses)
  std::uint64_t disk_writes = 0;
};

class KernelStore {
 public:
  explicit KernelStore(KernelStoreOptions options);

  /// Cache, then disk. nullptr if the pair is in neither tier. Disk hits
  /// come back as fresh entries with no query index yet -- the index is
  /// rebuilt lazily on first query (it is never persisted).
  CachedKernelPtr find(const PairKey& key);

  /// Inserts into the cache and (if configured) persists the kernel to disk
  /// (the entry's query index, if any, stays in memory only).
  void put(const PairKey& key, CachedKernelPtr entry);

  /// True iff the disk tier holds this key (cache not consulted).
  [[nodiscard]] bool on_disk(const PairKey& key) const;

  [[nodiscard]] KernelStoreStats stats() const;
  [[nodiscard]] const std::string& dir() const { return options_.dir; }

 private:
  [[nodiscard]] std::string path_for(const PairKey& key) const;

  KernelStoreOptions options_;
  mutable std::mutex mutex_;
  LruKernelCache cache_;
  std::uint64_t disk_hits_ = 0;
  std::uint64_t disk_errors_ = 0;
  std::uint64_t disk_writes_ = 0;
};

}  // namespace semilocal

// Persistent kernel corpus with an in-memory LRU front.
//
// A store is a directory of content-addressed kernel files
// (`<pair-key-hex>.slk`, the core/serialize formats; v3 block-compressed by
// default) fronted by a byte-budgeted LRU cache with two residency tiers.
// Lookups probe the cache first, then the directory -- by default through a
// read-only mmap (falling back to a whole-file read if the map fails). A v3
// disk hit enters the cache *compressed-resident*, charged its compressed
// bytes, and serves queries by streaming blocks; once it takes
// promote_after_hits cache hits (and the decoded tier has headroom under
// promoted_fraction) the store promotes it to a fully-decoded kernel +
// index, charged in full. The budget therefore measures real memory, and a
// cold tail costs a fraction of what decoded kernels would -- several times
// more pairs stay resident per byte. Writes go through a temp-file + rename
// so a crashed or killed writer never leaves a torn kernel behind for a
// reader to choke on.
//
// All filesystem access goes through the injected Env (engine/env.hpp), and
// the store is built to *degrade, never fail* when that Env misbehaves:
//
//   * write failure (ENOSPC, torn temp file, failed rename) -> the entry
//     keeps serving from the cache, is marked non-persisted with a retry
//     budget, and retry_pending() re-attempts the persist later (the
//     scheduler calls it after every compute batch);
//   * read failure -> treated as a miss, the caller recomputes;
//   * corrupt or foreign file -> treated as a miss and *quarantined* (moved
//     to `<name>.quarantined`) so the poison is kept for inspection but
//     never re-read, and the recomputed kernel can land cleanly;
//   * orphaned `*.tmp*` files (a writer crashed between temp write and
//     rename) are swept on startup.
//
// The write_failures / quarantined / pending_persists counters make every
// one of those paths auditable through the engine stats endpoint.
//
// Thread-safe: one mutex serializes cache metadata, while serialization I/O
// happens outside the lock (the file an entry maps to is immutable once
// renamed into place).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/serialize.hpp"
#include "engine/env.hpp"
#include "engine/lru_cache.hpp"

namespace semilocal {

struct KernelStoreOptions {
  /// Directory of persisted kernels. Empty disables the disk tier (the
  /// store is then just the shared LRU cache).
  std::string dir;
  /// In-memory LRU budget.
  std::size_t cache_bytes = std::size_t{64} << 20;
  /// Persist kernels inserted via put() to the disk tier.
  bool persist = true;
  /// On-disk encoding for persisted kernels. Loads always auto-detect, so
  /// stores written under either format keep reading.
  KernelFormat format = KernelFormat::kV3Compressed;
  /// Serve disk reads through Env::map_file (zero-copy for v3); a failed
  /// map falls back to read_file and bumps mmap_fallbacks.
  bool mmap_reads = true;
  /// Cache hits a compressed-resident entry takes before the store promotes
  /// it to a fully-decoded kernel (+index). < 0 disables promotion; 0
  /// promotes on the first cache hit after the disk load.
  int promote_after_hits = 2;
  /// Cap on the decoded tier as a fraction of cache_bytes: promotion is
  /// denied (the entry keeps serving compressed) while decoded bytes plus
  /// the candidate would exceed it. 1.0 = the whole budget may decode.
  double promoted_fraction = 1.0;
  /// Re-attempts a failed persist gets (via retry_pending()) before the
  /// entry is abandoned as cache-only.
  int persist_retries = 3;
  /// Bound on entries tracked for persist retry; beyond it a failed write
  /// is counted but the entry is immediately cache-only (no retry).
  std::size_t max_pending_persists = 256;
  /// Filesystem the store runs on. nullptr = real_env().
  Env* env = nullptr;
};

struct KernelStoreStats {
  LruCacheStats cache;
  std::uint64_t disk_hits = 0;        ///< found on disk after a cache miss
  std::uint64_t disk_errors = 0;      ///< unreadable/corrupt files (treated as misses)
  std::uint64_t disk_writes = 0;      ///< kernels successfully persisted
  std::uint64_t write_failures = 0;   ///< failed persist attempts (incl. retries)
  std::uint64_t quarantined = 0;      ///< corrupt files moved aside / removed
  std::uint64_t tmp_swept = 0;        ///< orphaned temp files removed at startup
  std::size_t pending_persists = 0;   ///< entries cached but not yet on disk
  std::uint64_t mmap_fallbacks = 0;   ///< map_file failures served via read_file
  std::uint64_t compressed_loads = 0; ///< disk hits kept compressed-resident
  std::uint64_t promotions = 0;       ///< compressed entries decoded + recharged
  std::uint64_t blocks_decoded = 0;   ///< v3 blocks decoded on store paths
  std::size_t bytes_on_disk = 0;      ///< sum of persisted kernel file sizes
  std::size_t bytes_on_disk_raw = 0;  ///< what v2-raw would have used

  /// Achieved on-disk compression vs the raw v2 encoding of the same
  /// kernels (1.0 when nothing was persisted or the store writes v2).
  [[nodiscard]] double compression_ratio() const {
    return bytes_on_disk == 0 ? 1.0
                              : static_cast<double>(bytes_on_disk_raw) /
                                    static_cast<double>(bytes_on_disk);
  }

  /// The store is degraded while any entry is cache-only pending a persist
  /// retry: serving is correct but a restart would lose those kernels.
  [[nodiscard]] bool degraded() const { return pending_persists > 0; }
};

class KernelStore {
 public:
  explicit KernelStore(KernelStoreOptions options);

  /// Cache, then disk. nullptr if the pair is in neither tier (including
  /// every disk failure mode: those degrade to a miss, never throw). v3
  /// disk hits come back compressed-resident (promoted to decoded entries
  /// once hot; see KernelStoreOptions); v2 hits come back decoded with no
  /// query index yet -- the index is rebuilt lazily on first query (it is
  /// never persisted).
  CachedKernelPtr find(const PairKey& key);

  /// Inserts into the cache and (if configured) persists the kernel to disk
  /// (the entry's query index, if any, stays in memory only). A persist
  /// failure marks the entry pending with a retry budget instead of
  /// throwing.
  void put(const PairKey& key, CachedKernelPtr entry);

  /// Re-attempts every pending persist once (each failure burns one retry;
  /// at zero the entry is abandoned as cache-only). Returns the number
  /// persisted. The scheduler calls this after each compute batch.
  std::size_t retry_pending();

  /// True iff the disk tier holds this key (cache not consulted).
  [[nodiscard]] bool on_disk(const PairKey& key) const;

  /// True iff puts are (configured to be) persisted to a disk tier.
  [[nodiscard]] bool persists() const {
    return options_.persist && !options_.dir.empty();
  }

  [[nodiscard]] KernelStoreStats stats() const;
  [[nodiscard]] const std::string& dir() const { return options_.dir; }

 private:
  struct PendingPersist {
    CachedKernelPtr entry;
    int retries_left = 0;
  };

  [[nodiscard]] std::string path_for(const PairKey& key) const;
  /// Serialize + temp write + rename. Returns true on success; failure
  /// cleans up the temp file best-effort and returns false.
  bool persist_one(const PairKey& key, const CachedKernel& entry);
  /// Moves a corrupt kernel file aside (or removes it if the move fails).
  void quarantine(const std::string& path);
  /// Startup recovery: removes `*.tmp*` orphans left by crashed writers.
  void sweep_orphan_tmps();
  /// Reads + parses the disk tier for `key` (cache not consulted): a
  /// compressed-resident entry for v3 files, a decoded one for v2. nullptr
  /// on any failure (counted, corrupt files quarantined).
  CachedKernelPtr load_from_disk(const PairKey& key);
  /// Decodes a hot compressed entry and replaces it in the cache with a
  /// decoded-tier entry (charged in full).
  CachedKernelPtr promote(const PairKey& key, const CachedKernelPtr& entry);

  KernelStoreOptions options_;
  Env* env_;
  mutable std::mutex mutex_;
  LruKernelCache cache_;
  std::unordered_map<PairKey, PendingPersist, PairKeyHash> pending_;
  std::mutex retry_mutex_;  ///< serializes retry_pending passes (I/O phase)
  /// Shared with compressed cache entries (which may outlive the store).
  std::shared_ptr<std::atomic<std::uint64_t>> blocks_decoded_;
  std::uint64_t disk_hits_ = 0;
  std::uint64_t disk_errors_ = 0;
  std::uint64_t disk_writes_ = 0;
  std::uint64_t write_failures_ = 0;
  std::uint64_t quarantined_ = 0;
  std::uint64_t tmp_swept_ = 0;
  std::uint64_t mmap_fallbacks_ = 0;
  std::uint64_t compressed_loads_ = 0;
  std::uint64_t promotions_ = 0;
  std::size_t bytes_on_disk_ = 0;
  std::size_t bytes_on_disk_raw_ = 0;
  std::uint64_t tmp_serial_ = 0;  ///< per-store, so temp names are deterministic
};

}  // namespace semilocal

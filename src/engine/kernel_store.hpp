// Persistent kernel corpus with an in-memory LRU front.
//
// A store is a directory of content-addressed kernel files
// (`<pair-key-hex>.slk`, the core/serialize format) fronted by a
// byte-budgeted LRU cache. Lookups probe the cache first, then the
// directory; disk hits are promoted into the cache so a working set served
// repeatedly settles into pure memory hits. Writes go through a
// temp-file + rename so a crashed or killed writer never leaves a torn
// kernel behind for a reader to choke on.
//
// All filesystem access goes through the injected Env (engine/env.hpp), and
// the store is built to *degrade, never fail* when that Env misbehaves:
//
//   * write failure (ENOSPC, torn temp file, failed rename) -> the entry
//     keeps serving from the cache, is marked non-persisted with a retry
//     budget, and retry_pending() re-attempts the persist later (the
//     scheduler calls it after every compute batch);
//   * read failure -> treated as a miss, the caller recomputes;
//   * corrupt or foreign file -> treated as a miss and *quarantined* (moved
//     to `<name>.quarantined`) so the poison is kept for inspection but
//     never re-read, and the recomputed kernel can land cleanly;
//   * orphaned `*.tmp*` files (a writer crashed between temp write and
//     rename) are swept on startup.
//
// The write_failures / quarantined / pending_persists counters make every
// one of those paths auditable through the engine stats endpoint.
//
// Thread-safe: one mutex serializes cache metadata, while serialization I/O
// happens outside the lock (the file an entry maps to is immutable once
// renamed into place).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "engine/env.hpp"
#include "engine/lru_cache.hpp"

namespace semilocal {

struct KernelStoreOptions {
  /// Directory of persisted kernels. Empty disables the disk tier (the
  /// store is then just the shared LRU cache).
  std::string dir;
  /// In-memory LRU budget.
  std::size_t cache_bytes = std::size_t{64} << 20;
  /// Persist kernels inserted via put() to the disk tier.
  bool persist = true;
  /// Re-attempts a failed persist gets (via retry_pending()) before the
  /// entry is abandoned as cache-only.
  int persist_retries = 3;
  /// Bound on entries tracked for persist retry; beyond it a failed write
  /// is counted but the entry is immediately cache-only (no retry).
  std::size_t max_pending_persists = 256;
  /// Filesystem the store runs on. nullptr = real_env().
  Env* env = nullptr;
};

struct KernelStoreStats {
  LruCacheStats cache;
  std::uint64_t disk_hits = 0;        ///< found on disk after a cache miss
  std::uint64_t disk_errors = 0;      ///< unreadable/corrupt files (treated as misses)
  std::uint64_t disk_writes = 0;      ///< kernels successfully persisted
  std::uint64_t write_failures = 0;   ///< failed persist attempts (incl. retries)
  std::uint64_t quarantined = 0;      ///< corrupt files moved aside / removed
  std::uint64_t tmp_swept = 0;        ///< orphaned temp files removed at startup
  std::size_t pending_persists = 0;   ///< entries cached but not yet on disk

  /// The store is degraded while any entry is cache-only pending a persist
  /// retry: serving is correct but a restart would lose those kernels.
  [[nodiscard]] bool degraded() const { return pending_persists > 0; }
};

class KernelStore {
 public:
  explicit KernelStore(KernelStoreOptions options);

  /// Cache, then disk. nullptr if the pair is in neither tier (including
  /// every disk failure mode: those degrade to a miss, never throw). Disk
  /// hits come back as fresh entries with no query index yet -- the index is
  /// rebuilt lazily on first query (it is never persisted).
  CachedKernelPtr find(const PairKey& key);

  /// Inserts into the cache and (if configured) persists the kernel to disk
  /// (the entry's query index, if any, stays in memory only). A persist
  /// failure marks the entry pending with a retry budget instead of
  /// throwing.
  void put(const PairKey& key, CachedKernelPtr entry);

  /// Re-attempts every pending persist once (each failure burns one retry;
  /// at zero the entry is abandoned as cache-only). Returns the number
  /// persisted. The scheduler calls this after each compute batch.
  std::size_t retry_pending();

  /// True iff the disk tier holds this key (cache not consulted).
  [[nodiscard]] bool on_disk(const PairKey& key) const;

  /// True iff puts are (configured to be) persisted to a disk tier.
  [[nodiscard]] bool persists() const {
    return options_.persist && !options_.dir.empty();
  }

  [[nodiscard]] KernelStoreStats stats() const;
  [[nodiscard]] const std::string& dir() const { return options_.dir; }

 private:
  struct PendingPersist {
    CachedKernelPtr entry;
    int retries_left = 0;
  };

  [[nodiscard]] std::string path_for(const PairKey& key) const;
  /// Serialize + temp write + rename. Returns true on success; failure
  /// cleans up the temp file best-effort and returns false.
  bool persist_one(const PairKey& key, const CachedKernel& entry);
  /// Moves a corrupt kernel file aside (or removes it if the move fails).
  void quarantine(const std::string& path);
  /// Startup recovery: removes `*.tmp*` orphans left by crashed writers.
  void sweep_orphan_tmps();

  KernelStoreOptions options_;
  Env* env_;
  mutable std::mutex mutex_;
  LruKernelCache cache_;
  std::unordered_map<PairKey, PendingPersist, PairKeyHash> pending_;
  std::mutex retry_mutex_;  ///< serializes retry_pending passes (I/O phase)
  std::uint64_t disk_hits_ = 0;
  std::uint64_t disk_errors_ = 0;
  std::uint64_t disk_writes_ = 0;
  std::uint64_t write_failures_ = 0;
  std::uint64_t quarantined_ = 0;
  std::uint64_t tmp_swept_ = 0;
  std::uint64_t tmp_serial_ = 0;  ///< per-store, so temp names are deterministic
};

}  // namespace semilocal

#include "engine/open_loop.hpp"

#include "engine/protocol.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <stdexcept>
#include <vector>

namespace semilocal {
namespace {

std::uint64_t mono_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One in-flight request: its send timestamp plus the oracle's expected
/// value (-1 = unverifiable). Strict FIFO per connection, like the protocol.
struct PendingSend {
  std::uint64_t send_ns = 0;
  Index expected = -1;
  std::string op_class;  // per_op latency bucket; empty = untagged
};

struct ClientConn {
  int fd = -1;
  FrameDecoder decoder;
  std::deque<PendingSend> outstanding;  // FIFO, matched response-by-response
  std::string out;                      // unsent framed bytes
  std::size_t out_off = 0;
  bool closed = false;
};

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

OpenLoopResult run_open_loop(const OpenLoopOptions& options) {
  if (!options.next_payload) {
    throw std::runtime_error("open_loop: next_payload is required");
  }
  OpenLoopResult result;
  // A 10k-connection fleet needs 10k fds; default soft limits (often 1024)
  // would turn most of the fleet into connect_failures. Mirror the server:
  // lift the soft limit to whatever the hard limit allows, best effort.
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) == 0 && lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    (void)::setrlimit(RLIMIT_NOFILE, &lim);
  }
  const int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) throw std::runtime_error("open_loop: epoll_create1 failed");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(epoll_fd);
    throw std::runtime_error("open_loop: bad host " + options.host);
  }

  // Connect the fleet up front (blocking; loopback connects resolve as fast
  // as the server accepts), then flip to non-blocking for the timed window.
  std::vector<ClientConn> conns(options.connections);
  for (std::size_t i = 0; i < conns.size(); ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0 ||
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      if (fd >= 0) ::close(fd);
      ++result.connect_failures;
      conns[i].closed = true;
      continue;
    }
    const int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
    conns[i].fd = fd;
    ++result.connected;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = i;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev);
  }

  std::vector<double> latencies_ms;
  latencies_ms.reserve(static_cast<std::size_t>(
      options.arrival_rate * static_cast<double>(options.duration_ms) / 1000.0) + 16);
  std::map<int, std::vector<double>> shard_latencies_ms;  // by response.shard
  std::map<std::string, std::vector<double>> op_latencies_ms;  // by op class
  std::uint64_t last_response_ns = 0;

  const auto close_conn = [&](ClientConn& conn) {
    if (conn.fd >= 0) ::close(conn.fd);
    conn.fd = -1;
    conn.closed = true;
  };

  const auto on_readable = [&](ClientConn& conn) {
    char buf[1 << 16];
    while (true) {
      const long n = ::read(conn.fd, buf, sizeof(buf));
      if (n == 0) {  // server closed (shed / write-cap / timeout)
        if (!conn.outstanding.empty()) ++result.closed_early;
        close_conn(conn);
        return;
      }
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        close_conn(conn);
        return;
      }
      const std::uint64_t now = mono_ns();
      try {
        conn.decoder.feed(
            std::string_view(buf, static_cast<std::size_t>(n)),
            [&](std::string_view payload, bool /*spanned*/) {
              ++result.received;
              last_response_ns = now;
              // Decode before touching the FIFO: a streamed op (plot) lands
              // several frames on one outstanding slot, and only the
              // terminal frame retires it and records the latency sample.
              Response response;
              bool decoded = true;
              try {
                response = decode_response(payload);
              } catch (const ProtocolError&) {
                ++result.decode_errors;
                decoded = false;
              }
              if (decoded && !terminal_response_frame(response)) return;
              double latency_ms = -1.0;
              Index expected = -1;
              std::string op_class;
              if (!conn.outstanding.empty()) {
                latency_ms =
                    static_cast<double>(now - conn.outstanding.front().send_ns) / 1e6;
                expected = conn.outstanding.front().expected;
                op_class = std::move(conn.outstanding.front().op_class);
                latencies_ms.push_back(latency_ms);
                conn.outstanding.pop_front();
              }
              if (!decoded) return;  // undecodable terminal: counted above
              if (response.status == Status::kOk) {
                ++result.ok;
                if (expected >= 0 && response.value != expected) {
                  ++result.wrong_answers;
                }
              } else if (response.status == Status::kOverloaded) {
                ++result.overloaded;
              } else {
                ++result.errors;
              }
              if (response.shard >= 0 && latency_ms >= 0.0) {
                shard_latencies_ms[response.shard].push_back(latency_ms);
              }
              if (!op_class.empty() && latency_ms >= 0.0) {
                op_latencies_ms[std::move(op_class)].push_back(latency_ms);
              }
            });
      } catch (const ProtocolError&) {
        ++result.decode_errors;
        close_conn(conn);
        return;
      }
      if (static_cast<std::size_t>(n) < sizeof(buf)) return;
    }
  };

  const auto pump_writes = [&](ClientConn& conn) {
    while (conn.out_off < conn.out.size()) {
      const long w = ::write(conn.fd, conn.out.data() + conn.out_off,
                             conn.out.size() - conn.out_off);
      if (w > 0) {
        conn.out_off += static_cast<std::size_t>(w);
        continue;
      }
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (w < 0 && errno == EINTR) continue;
      close_conn(conn);
      return;
    }
    conn.out.clear();
    conn.out_off = 0;
  };

  // --- timed window: fixed-interval sends, round-robin target ------------
  const std::uint64_t start_ns = mono_ns();
  const std::uint64_t window_ns = options.duration_ms * 1'000'000;
  const double interval_ns = 1e9 / std::max(1.0, options.arrival_rate);
  double next_send = static_cast<double>(start_ns);
  std::size_t rr = 0;
  epoll_event events[512];

  while (true) {
    const std::uint64_t now = mono_ns();
    if (now - start_ns >= window_ns) break;
    // Fire everything the schedule owes us (an open loop never waits for
    // responses -- falling behind the schedule is the server's problem).
    while (static_cast<double>(now) >= next_send &&
           mono_ns() - start_ns < window_ns) {
      next_send += interval_ns;
      std::size_t probe = 0;
      while (probe < conns.size() && conns[rr % conns.size()].closed) {
        ++rr;
        ++probe;
      }
      if (probe == conns.size()) break;  // every socket is gone
      ClientConn& conn = conns[rr % conns.size()];
      ++rr;
      conn.out += frame_payload(options.next_payload());
      conn.outstanding.push_back(PendingSend{
          mono_ns(), options.next_expected ? options.next_expected() : Index{-1},
          options.next_op_class ? options.next_op_class() : std::string{}});
      ++result.sent;
      pump_writes(conn);
    }
    const std::uint64_t after = mono_ns();
    const double wait_ns = next_send - static_cast<double>(after);
    const int timeout_ms = wait_ns <= 0 ? 0 : static_cast<int>(wait_ns / 1e6);
    const int n = ::epoll_wait(epoll_fd, events, 512, std::min(timeout_ms, 10));
    for (int i = 0; i < n; ++i) {
      ClientConn& conn = conns[events[i].data.u64];
      if (conn.closed) continue;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        if (!conn.outstanding.empty()) ++result.closed_early;
        close_conn(conn);
        continue;
      }
      on_readable(conn);
      if (!conn.closed) pump_writes(conn);
    }
  }

  // --- drain: no more sends, wait for the stragglers ----------------------
  const std::uint64_t drain_deadline = mono_ns() + options.drain_ms * 1'000'000;
  const auto all_drained = [&] {
    return std::all_of(conns.begin(), conns.end(), [](const ClientConn& c) {
      return c.closed || (c.outstanding.empty() && c.out.empty());
    });
  };
  while (!all_drained() && mono_ns() < drain_deadline) {
    const int n = ::epoll_wait(epoll_fd, events, 512, 10);
    for (int i = 0; i < n; ++i) {
      ClientConn& conn = conns[events[i].data.u64];
      if (conn.closed) continue;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        if (!conn.outstanding.empty()) ++result.closed_early;
        close_conn(conn);
        continue;
      }
      on_readable(conn);
      if (!conn.closed) pump_writes(conn);
    }
  }
  for (ClientConn& conn : conns) {
    if (!conn.closed && !conn.outstanding.empty()) ++result.stalled;
    close_conn(conn);
  }
  ::close(epoll_fd);

  const double send_elapsed_s = static_cast<double>(mono_ns() - start_ns) / 1e9;
  result.achieved_rate =
      send_elapsed_s > 0 ? static_cast<double>(result.sent) / send_elapsed_s : 0.0;
  // Throughput legs want ok / elapsed_s: window start to the last response,
  // so drain slack does not dilute the rate of a run that finished early.
  result.elapsed_s = last_response_ns > start_ns
                         ? static_cast<double>(last_response_ns - start_ns) / 1e9
                         : send_elapsed_s;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  result.p50_ms = percentile(latencies_ms, 0.50);
  result.p90_ms = percentile(latencies_ms, 0.90);
  result.p99_ms = percentile(latencies_ms, 0.99);
  result.max_ms = latencies_ms.empty() ? 0.0 : latencies_ms.back();
  for (auto& [shard, samples] : shard_latencies_ms) {
    std::sort(samples.begin(), samples.end());
    OpenLoopShardResult per;
    per.shard = shard;
    per.received = samples.size();
    per.p50_ms = percentile(samples, 0.50);
    per.p99_ms = percentile(samples, 0.99);
    result.per_shard.push_back(per);
  }
  for (auto& [op, samples] : op_latencies_ms) {
    std::sort(samples.begin(), samples.end());
    OpenLoopOpResult per;
    per.op = op;
    per.received = samples.size();
    per.p50_ms = percentile(samples, 0.50);
    per.p99_ms = percentile(samples, 0.99);
    result.per_op.push_back(per);
  }
  return result;
}

std::string to_json(const OpenLoopResult& r) {
  std::string out = "{";
  const auto u64 = [&out](const char* name, std::uint64_t v, bool first = false) {
    if (!first) out += ", ";
    out += "\"";
    out += name;
    out += "\": ";
    out += std::to_string(v);
  };
  const auto dbl = [&out](const char* name, double v) {
    out += ", \"";
    out += name;
    out += "\": ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    out += buf;
  };
  u64("connected", r.connected, /*first=*/true);
  u64("connect_failures", r.connect_failures);
  u64("sent", r.sent);
  u64("received", r.received);
  u64("ok", r.ok);
  u64("errors", r.errors);
  u64("overloaded", r.overloaded);
  u64("decode_errors", r.decode_errors);
  u64("closed_early", r.closed_early);
  u64("stalled_sockets", r.stalled);
  u64("wrong_answers", r.wrong_answers);
  dbl("achieved_rate", r.achieved_rate);
  dbl("elapsed_s", r.elapsed_s);
  dbl("p50_ms", r.p50_ms);
  dbl("p90_ms", r.p90_ms);
  dbl("p99_ms", r.p99_ms);
  dbl("max_ms", r.max_ms);
  out += ", \"per_shard\": [";
  for (std::size_t i = 0; i < r.per_shard.size(); ++i) {
    const OpenLoopShardResult& per = r.per_shard[i];
    if (i != 0) out += ", ";
    out += "{\"shard\": " + std::to_string(per.shard) +
           ", \"received\": " + std::to_string(per.received);
    char buf[64];
    std::snprintf(buf, sizeof(buf), ", \"p50_ms\": %.3f, \"p99_ms\": %.3f}",
                  per.p50_ms, per.p99_ms);
    out += buf;
  }
  out += "], \"per_op\": [";
  for (std::size_t i = 0; i < r.per_op.size(); ++i) {
    const OpenLoopOpResult& per = r.per_op[i];
    if (i != 0) out += ", ";
    out += "{\"op\": \"" + per.op +
           "\", \"received\": " + std::to_string(per.received);
    char buf[64];
    std::snprintf(buf, sizeof(buf), ", \"p50_ms\": %.3f, \"p99_ms\": %.3f}",
                  per.p50_ms, per.p99_ms);
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace semilocal

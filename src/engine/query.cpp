#include "engine/query.hpp"

#include <stdexcept>

namespace semilocal {

Index kernel_h(const SemiLocalKernel& kernel, Index i, Index j) {
  if (i < 0 || j < 0 || i > kernel.order() || j > kernel.order()) {
    throw std::out_of_range("kernel_h: index outside [0, m+n]");
  }
  return j - i + kernel.m() - kernel.permutation().dominance_sum(i, j);
}

Index kernel_lcs(const SemiLocalKernel& kernel) {
  return kernel_h(kernel, kernel.m(), kernel.n());
}

Index kernel_string_substring(const SemiLocalKernel& kernel, Index j0, Index j1) {
  if (j0 < 0 || j1 < j0 || j1 > kernel.n()) {
    throw std::out_of_range("kernel_string_substring: need 0 <= j0 <= j1 <= n");
  }
  return kernel_h(kernel, kernel.m() + j0, j1);
}

Index kernel_substring_string(const SemiLocalKernel& kernel, Index i0, Index i1) {
  if (i0 < 0 || i1 < i0 || i1 > kernel.m()) {
    throw std::out_of_range("kernel_substring_string: need 0 <= i0 <= i1 <= m");
  }
  const Index m = kernel.m();
  const Index n = kernel.n();
  return kernel_h(kernel, m - i0, n + (m - i1)) - i0 - (m - i1);
}

}  // namespace semilocal

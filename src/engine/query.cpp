#include "engine/query.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/query_formulas.hpp"

namespace semilocal {

Index kernel_h(const SemiLocalKernel& kernel, Index i, Index j) {
  check_h_range(kernel.order(), i, j);
  return h_from_sigma(kernel.m(), i, j, kernel.permutation().dominance_sum(i, j));
}

namespace {

Index scan_answer(const SemiLocalKernel& kernel, const HQuery& q) {
  return kernel_h(kernel, q.i, q.j) - q.correction;
}

HQuery lower_window(Index m, Index n, const WindowQuery& w) {
  switch (w.kind) {
    case QueryKind::kLcs:
      return lcs_query(m, n);
    case QueryKind::kStringSubstring:
      return string_substring_query(m, n, w.x, w.y);
    case QueryKind::kSubstringString:
      return substring_string_query(m, n, w.x, w.y);
  }
  throw std::invalid_argument("answer_query_batch: unknown query kind");
}

// Answers one lowered query off a compressed-resident entry by streaming
// blocks. Chosen over the indexed/scan paths for compressed entries: both of
// those would force a full decode (and the index additionally a build) for
// an entry the store deliberately kept small.
Index compressed_answer(const CompressedKernel& blob, const HQuery& q,
                        QueryCounters* counters) {
  const Index sigma =
      blob.sigma(q.i, q.j, counters ? &counters->blocks_decoded : nullptr);
  if (counters) counters->compressed.fetch_add(1, std::memory_order_relaxed);
  return h_from_sigma(blob.m(), q.i, q.j, sigma) - q.correction;
}

}  // namespace

Index kernel_lcs(const SemiLocalKernel& kernel) {
  return scan_answer(kernel, lcs_query(kernel.m(), kernel.n()));
}

Index kernel_string_substring(const SemiLocalKernel& kernel, Index j0, Index j1) {
  return scan_answer(kernel, string_substring_query(kernel.m(), kernel.n(), j0, j1));
}

Index kernel_substring_string(const SemiLocalKernel& kernel, Index i0, Index i1) {
  return scan_answer(kernel, substring_string_query(kernel.m(), kernel.n(), i0, i1));
}

Index answer_query(const CachedKernel& entry, QueryKind kind, Index x, Index y,
                   bool use_index, QueryCounters* counters) {
  if (entry.is_compressed() && entry.index_if_built() == nullptr) {
    return compressed_answer(*entry.compressed(),
                             lower_window(entry.m(), entry.n(), {kind, x, y}),
                             counters);
  }
  if (use_index) {
    const QueryIndex& index =
        entry.index(counters ? &counters->index_builds : nullptr);
    if (counters) counters->indexed.fetch_add(1, std::memory_order_relaxed);
    switch (kind) {
      case QueryKind::kLcs:
        return index.lcs();
      case QueryKind::kStringSubstring:
        return index.string_substring(x, y);
      case QueryKind::kSubstringString:
        return index.substring_string(x, y);
    }
  }
  if (counters) counters->scanned.fetch_add(1, std::memory_order_relaxed);
  const SemiLocalKernel& kernel = entry.kernel();
  switch (kind) {
    case QueryKind::kLcs:
      return kernel_lcs(kernel);
    case QueryKind::kStringSubstring:
      return kernel_string_substring(kernel, x, y);
    case QueryKind::kSubstringString:
      return kernel_substring_string(kernel, x, y);
  }
  throw std::invalid_argument("answer_query: unknown query kind");
}

void answer_query_batch(const CachedKernel& entry, const WindowQuery* windows,
                        Index* out, std::size_t count, bool use_index,
                        QueryCounters* counters) {
  if (count == 0) return;
  if (entry.is_compressed() && entry.index_if_built() == nullptr) {
    const CompressedKernel& blob = *entry.compressed();
    for (std::size_t t = 0; t < count; ++t) {
      out[t] = compressed_answer(
          blob, lower_window(blob.m(), blob.n(), windows[t]), counters);
    }
    return;
  }
  if (use_index) {
    const QueryIndex& index =
        entry.index(counters ? &counters->index_builds : nullptr);
    constexpr std::size_t kChunk = 128;
    HQuery lowered[kChunk];
    std::size_t done = 0;
    while (done < count) {
      const std::size_t chunk = std::min(kChunk, count - done);
      for (std::size_t t = 0; t < chunk; ++t) {
        lowered[t] = lower_window(index.m(), index.n(), windows[done + t]);
      }
      index.answer_many(lowered, out + done, chunk);
      done += chunk;
    }
    if (counters) counters->indexed.fetch_add(count, std::memory_order_relaxed);
    return;
  }
  for (std::size_t t = 0; t < count; ++t) {
    out[t] = answer_query(entry, windows[t].kind, windows[t].x, windows[t].y,
                          /*use_index=*/false, counters);
  }
}

void answer_plot_row(const CachedKernel& entry, Index col0, Index step, Index window,
                     std::size_t count, Index* out, bool use_planner, bool use_index,
                     QueryCounters* counters) {
  if (count == 0) return;
  if (entry.m() != window) {
    throw std::out_of_range("answer_plot_row: entry is not a strip of the window width");
  }
  const Index n = entry.n();
  const Index last_j0 = col0 + static_cast<Index>(count - 1) * step;
  if (col0 < 0 || last_j0 + window > n) {
    throw std::out_of_range("answer_plot_row: row runs off the end of b");
  }
  if (counters) counters->plot_windows.fetch_add(count, std::memory_order_relaxed);
  if (use_planner && use_index && strided_walk_profitable(entry.order(), step)) {
    // On the diagonal: window b[j0, j0+w) sits at H(w + j0, j0 + w), so the
    // whole row is sigma(i, i) at stride `step` -- one anchoring descent,
    // then the seam walk (core/query_index.hpp).
    const QueryIndex& index =
        entry.index(counters ? &counters->index_builds : nullptr);
    const Permutation& perm = entry.kernel().permutation();
    strided_diagonal_sigma(index, perm, window + col0, step, count, out);
    for (std::size_t v = 0; v < count; ++v) out[v] = window - out[v];
    if (counters) {
      counters->indexed.fetch_add(1, std::memory_order_relaxed);
      counters->plot_reused_descents.fetch_add(count - 1, std::memory_order_relaxed);
    }
    return;
  }
  // Naive lowering: `count` independent string-substring windows through the
  // ordinary batch path (interleaved descents, or compressed streaming).
  std::vector<WindowQuery> windows(count);
  for (std::size_t v = 0; v < count; ++v) {
    const Index j0 = col0 + static_cast<Index>(v) * step;
    windows[v] = {QueryKind::kStringSubstring, j0, j0 + window};
  }
  answer_query_batch(entry, windows.data(), out, count, use_index, counters);
}

}  // namespace semilocal

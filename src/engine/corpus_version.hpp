// Versioned incremental corpus: upsert_document via cached chunk braids.
//
// A CorpusManager owns a mutable set of named documents and keeps the pair
// kernel of every document pair published in the engine's KernelStore. The
// trick that makes edits cheap is the composition theorem (Thm 3.4): each
// document is split into fixed-size chunks, and the kernel of (doc, other)
// is the steady-ant product of the per-chunk *strip braids*
// P_{chunk_i, other}. Every strip braid -- and every composed *prefix
// braid* P_{chunk_1..i, other} at a chunk boundary -- is content-addressed
// in the store under the ordinary make_pair_key of its input bytes, so:
//
//   * an append finds the old whole-document kernel as the longest cached
//     prefix braid and pays only O(chunk * n) combing for the new chunks
//     plus O((m+n) log(m+n)) steady-ant multiplications, not O(mn);
//   * an in-place edit re-combs only the dirty chunks (the clean ones hit
//     the store by content) and recomposes from the last clean boundary;
//   * a crash mid-upsert is harmless on the kernel side -- store writes are
//     additive and content-addressed, an interrupted run leaves orphans,
//     never torn state.
//
// Dirty-chunk computes go through the engine's batching scheduler
// (entry_async), so concurrent upserts coalesce, batch per worker, and hit
// the same bounded-queue backpressure (EngineOverloaded) as queries -- the
// frontend's admission control covers upserts for free.
//
// Publish protocol (crash consistency; see DESIGN.md §14): kernels land in
// the store first, then the new document bytes land via temp-file + rename,
// and finally the whole index.tsv -- generation header, per-document
// version manifest, versioned pair entries -- is republished atomically via
// temp + rename. The rename is the commit point: a reader (or a restarted
// manager) sees the previous generation or the new one, entire, never a
// blend. In-memory state is mutated only after the commit succeeds.
//
// Old-version pair kernels are never touched: content addressing means the
// new version keys simply miss the LRU and the store, so stale entries age
// out of the cache naturally and queries for the new bytes rebuild (or
// reuse) lazily.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/kernel.hpp"
#include "engine/corpus.hpp"
#include "engine/engine.hpp"

namespace semilocal {

struct CorpusManagerOptions {
  /// Corpus root: `index.tsv` plus `docs/<id>.v<version>` live here. Empty
  /// disables durability (in-memory corpus; kernels may still persist via
  /// the engine's store).
  std::string dir;
  /// Strip-braid chunk width in symbols. Small chunks localize edits but
  /// cost more compositions; the default suits multi-kilobyte documents.
  Index chunk = 1024;
  /// workers = 0 engines: run queued strip computes on this thread before
  /// waiting on them (deterministic tests, stdio serving).
  bool drain_inline = false;
  /// Steady-ant configuration for the composition products.
  SteadyAntOptions ant = {.precalc = true, .preallocate = true};
  /// Filesystem for document bytes and the index. nullptr = real_env().
  Env* env = nullptr;
};

/// What one upsert (or remove) did, echoed to clients as the response text.
struct UpsertReport {
  std::string id;
  Index version = 0;            ///< document version after the call
  std::uint64_t generation = 0; ///< corpus generation after the call
  bool changed = false;         ///< false = same bytes, nothing republished
  std::size_t pairs = 0;            ///< pair kernels (re)published
  std::size_t chunks_computed = 0;  ///< dirty strip braids combed
  std::size_t chunks_reused = 0;    ///< strip braids served by content hash
  std::size_t prefix_reused = 0;    ///< chunks skipped via a cached prefix braid
  std::size_t composes = 0;         ///< steady-ant multiplications run

  /// Compact JSON rendering (one flat object).
  [[nodiscard]] std::string json() const;
};

/// Thrown when an upsert computed its kernels but could not commit (document
/// write or index publish failed). The corpus -- in memory and on disk --
/// still serves the previous generation.
class CorpusPublishError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class CorpusManager {
 public:
  /// Binds to `engine` (whose store receives every strip/prefix/pair
  /// kernel). If `options.dir` holds an index.tsv, the corpus -- documents,
  /// versions, generation -- is loaded from it.
  CorpusManager(ComparisonEngine& engine, CorpusManagerOptions options);

  /// Inserts or updates a document. Identical bytes are a no-op (the
  /// current version is echoed; nothing is republished), which makes
  /// retried/failed-over upserts idempotent. Otherwise rebuilds the pair
  /// kernel against every other document from cached chunk braids, bumps
  /// the document version and corpus generation, and publishes atomically.
  /// Throws std::invalid_argument on a malformed id, EngineOverloaded under
  /// scheduler backpressure, CorpusPublishError when the commit fails.
  UpsertReport upsert_document(const std::string& id, Sequence bytes);

  /// Removes a document (its pairs leave the index; store files stay, they
  /// are content-addressed garbage). Removing an absent id is a no-op.
  UpsertReport remove_document(const std::string& id);

  [[nodiscard]] std::uint64_t generation() const;
  [[nodiscard]] std::size_t documents() const;
  /// Current version of `id`, or nullopt if absent.
  [[nodiscard]] std::optional<Index> version(const std::string& id) const;
  /// Current bytes of `id`, or nullopt if absent.
  [[nodiscard]] std::optional<Sequence> document(const std::string& id) const;
  /// The published pair entries (what index.tsv holds), id-sorted.
  [[nodiscard]] std::vector<CorpusIndexEntry> index_entries() const;

 private:
  struct Doc {
    Index version = 0;
    Sequence bytes;
  };

  /// Rebuilds P_{a, b} where the document on `chunked_side_a ? a : b` is
  /// chunked and composed from cached braids. Publishes prefix braids at
  /// every composed boundary plus the final pair kernel into the store.
  void rebuild_pair(const Sequence& a, const Sequence& b, bool chunked_side_a,
                    UpsertReport& report);

  /// The id-sorted pair entries for the current (locked) document map.
  [[nodiscard]] std::vector<CorpusIndexEntry> entries_locked() const;

  /// Serializes generation + #doc manifest + pair entries and publishes it
  /// via temp + rename. Throws CorpusPublishError on failure.
  void publish_locked(const std::vector<CorpusIndexEntry>& entries,
                      std::uint64_t generation);

  [[nodiscard]] std::string index_path() const;
  [[nodiscard]] std::string doc_path(const std::string& id, Index version) const;
  void load_from_dir();

  ComparisonEngine& engine_;
  CorpusManagerOptions options_;
  Env* env_;
  mutable std::mutex mutex_;
  std::map<std::string, Doc> docs_;  // ordered: pair order is id order
  std::uint64_t generation_ = 0;
  AntWorkspace workspace_;
};

/// True iff `id` is usable as a document id: 1..128 printable ASCII chars,
/// no whitespace, no path separators (ids appear in index.tsv columns and
/// document filenames).
bool valid_document_id(const std::string& id);

}  // namespace semilocal

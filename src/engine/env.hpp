// Deterministic fault-injection seam between the engine and the OS.
//
// Everything the engine asks of the outside world -- filesystem ops and a
// monotonic clock -- goes through the Env interface. Production code runs on
// RealEnv (a thin passthrough); tests run on FaultyEnv, which wraps any base
// Env and injects failures according to a scripted, seeded FaultPlan:
//
//   * scripted triggers -- "fail the 3rd rename", "fail every write whose
//     path contains .tmp", "short-write 17 bytes then fail" -- expressed as
//     (op, path substring, skip, count) windows;
//   * seeded-probability mode -- each in-window call fails with probability
//     p, drawn from the plan's RNG in call order, so a single-threaded run
//     is bit-reproducible from the seed alone;
//   * a replayable trace -- every injected fault is logged (op-sequence
//     number, rule, op, path basename, detail) and rendered as text, so two
//     runs of the same scenario can be compared byte-for-byte.
//
// File ops are whole-file on purpose: write_file collapses open + write +
// fsync + close into one call whose failure modes (including the short write
// that leaves a torn partial file behind) are exactly the ones the store's
// temp-file + rename discipline must survive. Injectable ops are read /
// write / rename / remove / list / map; exists() and create_dirs() are
// deliberately non-throwing so constructors and cheap probes stay total
// under any plan.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <random>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace semilocal {

/// Failure of an Env operation. `injected()` is true for FaultyEnv faults,
/// false for real filesystem errors -- callers treat both identically (that
/// equivalence is the point of the testkit), logs keep them apart.
class EnvError : public std::runtime_error {
 public:
  explicit EnvError(const std::string& what, bool injected = false)
      : std::runtime_error(what), injected_(injected) {}

  [[nodiscard]] bool injected() const { return injected_; }

 private:
  bool injected_;
};

/// The injectable operation classes a FaultRule can target.
enum class EnvOp : std::uint8_t {
  kRead = 0,      ///< read_file
  kWrite = 1,     ///< write_file (short-write faults live here)
  kRename = 2,    ///< rename_file
  kRemove = 3,    ///< remove_file
  kList = 4,      ///< list_dir
  kMap = 5,       ///< map_file (torn-mapping faults live here)
  kSockRead = 6,  ///< fd_read (short reads / connection errors)
  kSockWrite = 7, ///< fd_write (short writes / connection errors)
};

/// Stable lowercase name ("read", "write", ...) used in traces.
const char* env_op_name(EnvOp op);

/// A read-only view of a whole file's bytes. RealEnv backs it with mmap(2)
/// and unmaps on destruction; FaultyEnv's torn variant is heap-backed. The
/// view is immutable and valid exactly as long as the MappedFile lives, so
/// holders (CompressedKernel entries) keep the shared_ptr as their owner.
class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  virtual ~MappedFile() = default;

  [[nodiscard]] std::string_view view() const { return view_; }

 protected:
  std::string_view view_;
};

using MappedFilePtr = std::shared_ptr<const MappedFile>;

class Env {
 public:
  virtual ~Env() = default;

  /// Whole-file read. Throws EnvError if the file is missing or unreadable.
  virtual std::string read_file(const std::string& path) = 0;

  /// Read-only mapping of a whole file (mmap for RealEnv). Throws EnvError
  /// if the file cannot be opened or mapped -- callers fall back to
  /// read_file, which is why map failure is a distinct injectable fault.
  virtual MappedFilePtr map_file(const std::string& path) = 0;

  /// Whole-file create-or-overwrite, flushed to the OS before returning
  /// (open + write + fsync + close as one op). Throws EnvError on failure;
  /// a failed write may leave a partial file behind, exactly like ENOSPC
  /// mid-write on a real filesystem.
  virtual void write_file(const std::string& path, std::string_view data) = 0;

  /// Atomic-within-directory rename. Throws EnvError on failure.
  virtual void rename_file(const std::string& from, const std::string& to) = 0;

  /// Removes a file; removing a missing file is a no-op, other failures
  /// throw EnvError.
  virtual void remove_file(const std::string& path) = 0;

  /// Filenames (not full paths) in `dir`, sorted for determinism; empty if
  /// the directory does not exist. Throws EnvError on read failure.
  virtual std::vector<std::string> list_dir(const std::string& dir) = 0;

  /// True iff `path` exists. Never throws (not an injectable fault point).
  virtual bool exists(const std::string& path) = 0;

  /// Creates a directory tree, existing is fine. Never throws; returns
  /// false on failure (the caller's subsequent writes will fail and be
  /// handled by the degradation path).
  virtual bool create_dirs(const std::string& dir) = 0;

  /// Monotonic clock in nanoseconds (steady_clock for RealEnv, a
  /// deterministic synthetic clock for FaultyEnv).
  virtual std::uint64_t now_ns() = 0;

  /// Socket/pipe seam for the serve frontend: one read(2) on a (typically
  /// non-blocking) fd. Returns the byte count, 0 on EOF, or -1 with errno
  /// set (EAGAIN = no data yet). `label` is the fault-rule path (the
  /// frontend passes "conn:<id>"), so plans can tear a specific connection
  /// or every one ("conn"). Injected failures return -1 with errno = EIO;
  /// a rule with short_write_bytes > 0 instead truncates the transfer --
  /// deterministic partial I/O, which is how a plan "delays" a socket.
  virtual long fd_read(int fd, void* buf, std::size_t n, std::string_view label);

  /// One write(2) on a fd; mirror contract of fd_read.
  virtual long fd_write(int fd, const void* buf, std::size_t n, std::string_view label);
};

/// The process-wide passthrough Env over the real filesystem and clock.
Env& real_env();

/// One scripted failure trigger. A rule matches calls of its op class whose
/// path contains `path_substring`; it lets the first `skip` matches through,
/// then arms for the next `count` matches, failing each armed call with
/// `probability` (decided by the plan's seeded RNG, in call order).
struct FaultRule {
  EnvOp op = EnvOp::kWrite;
  /// Substring filter on the full path; empty matches every path.
  std::string path_substring;
  /// Matching calls let through before the failure window opens.
  std::uint64_t skip = 0;
  /// Width of the failure window ("fail the Nth" = skip N-1, count 1;
  /// "every write from now on" = the default unbounded count).
  std::uint64_t count = std::numeric_limits<std::uint64_t>::max();
  /// Chance an armed call actually fails; 1.0 = deterministic trigger.
  double probability = 1.0;
  /// kWrite only: bytes actually written before the injected failure.
  /// 0 = fail before writing anything; a value in (0, size) leaves a torn
  /// partial file, like a short write whose return value went unchecked.
  std::size_t short_write_bytes = 0;
  /// kMap only: 0 = the mapping itself fails (EnvError; callers fall back
  /// to read_file). > 0 = the map "succeeds" but only the first
  /// torn_map_bytes bytes are real and the rest read as zeros -- pages that
  /// never made it to disk. Torn maps are served, not thrown: the reader's
  /// checksums must catch them.
  std::size_t torn_map_bytes = 0;
  /// Carried into the EnvError message and the trace.
  std::string message = "injected fault";
};

struct FaultPlan {
  /// Seeds the probability draws (and nothing else); two FaultyEnvs built
  /// from equal plans behave identically on identical call sequences.
  std::uint64_t seed = 0;
  /// Synthetic-clock step per now_ns() call.
  std::uint64_t clock_step_ns = 1'000'000;
  std::vector<FaultRule> rules;
};

/// One injected fault, in op-call order.
struct FaultEvent {
  std::uint64_t op_seq = 0;    ///< index of the env call (all ops counted)
  std::size_t rule = 0;        ///< index into FaultPlan::rules
  EnvOp op = EnvOp::kWrite;
  std::string path_base;       ///< path basename (run-independent)
  std::string detail;
};

/// A seeded fault-injecting Env decorating a base Env (default: real_env()).
/// Thread-safe; single-threaded call sequences are fully deterministic.
class FaultyEnv : public Env {
 public:
  explicit FaultyEnv(FaultPlan plan, Env* base = nullptr);

  std::string read_file(const std::string& path) override;
  MappedFilePtr map_file(const std::string& path) override;
  void write_file(const std::string& path, std::string_view data) override;
  void rename_file(const std::string& from, const std::string& to) override;
  void remove_file(const std::string& path) override;
  std::vector<std::string> list_dir(const std::string& dir) override;
  bool exists(const std::string& path) override;
  bool create_dirs(const std::string& dir) override;
  std::uint64_t now_ns() override;
  long fd_read(int fd, void* buf, std::size_t n, std::string_view label) override;
  long fd_write(int fd, const void* buf, std::size_t n, std::string_view label) override;

  [[nodiscard]] std::vector<FaultEvent> trace() const;
  /// The trace as text, one `#<op_seq> rule<i> <op> <basename>: <detail>`
  /// line per injected fault -- the byte-for-byte replay artifact.
  [[nodiscard]] std::string trace_text() const;
  [[nodiscard]] std::uint64_t faults_injected() const;

 private:
  struct RuleState {
    std::uint64_t matched = 0;  ///< matching calls seen so far
  };
  struct Fired {
    bool fired = false;
    std::size_t short_write = 0;  ///< kWrite: partial bytes to tear first
    std::size_t torn_map = 0;     ///< kMap: intact prefix of a torn mapping
    std::string message;
  };

  /// Consumes one env call of class `op` on `path`: advances every matching
  /// rule and, if one fires, logs the event and returns its verdict. The
  /// caller raises the EnvError (after tearing the file, for short writes).
  Fired arbitrate(EnvOp op, const std::string& path);

  FaultPlan plan_;
  Env* base_;
  mutable std::mutex mutex_;
  std::mt19937_64 rng_;
  std::vector<RuleState> states_;
  std::vector<FaultEvent> events_;
  std::uint64_t op_seq_ = 0;
  std::uint64_t fake_clock_ns_ = 0;
};

}  // namespace semilocal

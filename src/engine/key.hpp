// Content-addressed identity of a comparison job.
//
// The engine keys every kernel by the *contents* of the two input strings,
// not by caller-supplied names: two requests for the same (a, b) pair -- from
// different connections, or the same corpus record under two ids -- hit the
// same cache entry and the same on-disk kernel file. A key is the pair of
// 64-bit FNV-1a digests of the symbol data plus both lengths; lengths are
// kept explicit so hash collisions between strings of different sizes are
// structurally impossible and so the store can size-check files cheaply.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "util/types.hpp"

namespace semilocal {

/// Identity of an ordered (a, b) comparison. Equality-comparable, hashable,
/// and renderable as a fixed-width hex string for on-disk filenames.
struct PairKey {
  std::uint64_t hash_a = 0;
  std::uint64_t hash_b = 0;
  Index len_a = 0;
  Index len_b = 0;

  friend bool operator==(const PairKey&, const PairKey&) = default;

  /// 32 hex digits (hash_a, hash_b); stable across runs and platforms.
  [[nodiscard]] std::string hex() const;
};

/// Digests the symbol data of both strings into a PairKey.
PairKey make_pair_key(SequenceView a, SequenceView b);

/// FNV-1a over a symbol sequence (the digest make_pair_key uses per side).
std::uint64_t sequence_digest(SequenceView s);

struct PairKeyHash {
  std::size_t operator()(const PairKey& k) const noexcept {
    // hash_a/hash_b are already well-mixed digests; fold in the lengths.
    std::uint64_t h = k.hash_a ^ (k.hash_b * 0x9e3779b97f4a7c15ULL);
    h ^= static_cast<std::uint64_t>(k.len_a) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h ^= static_cast<std::uint64_t>(k.len_b) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

}  // namespace semilocal

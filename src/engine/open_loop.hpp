// Open-loop load client for the serve frontends.
//
// Closed-loop clients (send, wait, send) measure a server at the throughput
// the *client* sustains: under overload they slow down with the server and
// the latency curve flattens into a lie. The open-loop runner instead fires
// requests on a fixed schedule -- `arrival_rate` per second in aggregate,
// round-robin across `connections` persistent sockets -- whether or not
// earlier responses came back, which is what exposes queueing collapse.
//
// One epoll thread owns every client socket. Each connection keeps a FIFO of
// send timestamps; responses (matched in order, the protocol is strictly
// FIFO per connection) pop the front and record a latency sample. After the
// timed window the runner stops sending and drains: any connection still
// holding unanswered requests once the drain window closes counts as a
// *stalled socket* -- the bench gate's red flag, because the frontend
// contract says every request ends in a frame or a close, never silence.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace semilocal {

struct OpenLoopOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Persistent connections opened before the timed window starts.
  std::size_t connections = 64;
  /// Aggregate offered load, requests per second across all connections.
  double arrival_rate = 1000.0;
  /// Length of the timed send window.
  std::uint64_t duration_ms = 1000;
  /// Extra time after the window for in-flight responses to land.
  std::uint64_t drain_ms = 2000;
  /// Produces each request's payload (unframed; the runner frames it).
  /// Called once per send, in send order.
  std::function<std::string()> next_payload;
  /// Optional oracle: called once per send, immediately after next_payload,
  /// returning the value a correct kOk response must carry (-1 = this
  /// request is unverifiable, e.g. a batch). Matched FIFO per connection
  /// like the latency samples; a verified mismatch counts a wrong_answer --
  /// the failover gate's red flag, because a router under churn may refuse
  /// (typed RETRY_AFTER) but must never answer wrong.
  std::function<Index()> next_expected;
  /// Optional per-send op-class tag (e.g. "query", "batch", "plot"), called
  /// once per send after next_payload; that request's latency lands in the
  /// per_op bucket of the same name. Streamed ops (plots) record one sample
  /// at their terminal frame -- whole-stream latency, not per-tile.
  std::function<std::string()> next_op_class;
};

/// Latency breakdown for one serving shard (responses carrying shard >= 0).
struct OpenLoopShardResult {
  int shard = -1;
  std::uint64_t received = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

/// Latency breakdown for one op class (see OpenLoopOptions::next_op_class).
struct OpenLoopOpResult {
  std::string op;
  std::uint64_t received = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

struct OpenLoopResult {
  std::uint64_t connected = 0;       ///< sockets that finished connect()
  std::uint64_t connect_failures = 0;
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;          ///< kError responses
  std::uint64_t overloaded = 0;      ///< RETRY_AFTER (kOverloaded) responses
  std::uint64_t decode_errors = 0;
  std::uint64_t closed_early = 0;    ///< sockets the server closed mid-run
  std::uint64_t stalled = 0;         ///< sockets still owing responses post-drain
  std::uint64_t wrong_answers = 0;   ///< kOk responses failing the oracle check
  double achieved_rate = 0.0;        ///< sends per second actually issued
  double elapsed_s = 0.0;            ///< window start to the last response seen
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  /// Per serving shard (router runs only; empty against a standalone server).
  std::vector<OpenLoopShardResult> per_shard;
  /// Per op class (empty unless next_op_class was provided).
  std::vector<OpenLoopOpResult> per_op;
};

/// Runs one open-loop measurement against a frontend. Blocking; returns when
/// the window and drain complete. Throws std::runtime_error only for setup
/// failures (socket/epoll exhaustion); per-connection failures are counted.
OpenLoopResult run_open_loop(const OpenLoopOptions& options);

/// The result as a flat JSON object (bench_engine.json / loadgen --json).
std::string to_json(const OpenLoopResult& result);

}  // namespace semilocal

#include "engine/kernel_store.hpp"

#include <atomic>
#include <filesystem>

#include "core/serialize.hpp"

namespace semilocal {

namespace fs = std::filesystem;

KernelStore::KernelStore(KernelStoreOptions options)
    : options_(std::move(options)), cache_(options_.cache_bytes) {
  if (!options_.dir.empty()) fs::create_directories(options_.dir);
}

std::string KernelStore::path_for(const PairKey& key) const {
  return (fs::path(options_.dir) / (key.hex() + ".slk")).string();
}

CachedKernelPtr KernelStore::find(const PairKey& key) {
  {
    std::lock_guard lock(mutex_);
    if (CachedKernelPtr hit = cache_.get(key)) return hit;
  }
  if (options_.dir.empty()) return nullptr;
  const std::string path = path_for(key);
  std::error_code ec;
  if (!fs::exists(path, ec)) return nullptr;
  KernelPtr loaded;
  try {
    loaded = std::make_shared<const SemiLocalKernel>(load_kernel_file(path));
  } catch (const std::exception&) {
    std::lock_guard lock(mutex_);
    ++disk_errors_;
    return nullptr;
  }
  // Cheap sanity check that the file really is the kernel of this pair's
  // lengths; a content-hash filename collision across sizes cannot happen
  // (lengths are part of the key), so a mismatch means a foreign file.
  if (loaded->m() != key.len_a || loaded->n() != key.len_b) {
    std::lock_guard lock(mutex_);
    ++disk_errors_;
    return nullptr;
  }
  auto entry = std::make_shared<const CachedKernel>(std::move(loaded));
  std::lock_guard lock(mutex_);
  ++disk_hits_;
  cache_.put(key, entry);
  return entry;
}

void KernelStore::put(const PairKey& key, CachedKernelPtr entry) {
  if (!entry) return;
  bool write_disk = false;
  {
    std::lock_guard lock(mutex_);
    cache_.put(key, entry);
    if (options_.persist && !options_.dir.empty()) {
      write_disk = true;
      ++disk_writes_;
    }
  }
  if (!write_disk) return;
  // Unique temp name so concurrent writers of the same key can't interleave
  // into one file; the final rename is atomic within the directory.
  static std::atomic<std::uint64_t> tmp_serial{0};
  const std::string path = path_for(key);
  const std::string tmp =
      path + ".tmp" + std::to_string(tmp_serial.fetch_add(1, std::memory_order_relaxed));
  save_kernel_file(tmp, entry->kernel());
  fs::rename(tmp, path);
}

bool KernelStore::on_disk(const PairKey& key) const {
  if (options_.dir.empty()) return false;
  std::error_code ec;
  return fs::exists(path_for(key), ec);
}

KernelStoreStats KernelStore::stats() const {
  std::lock_guard lock(mutex_);
  return KernelStoreStats{.cache = cache_.stats(),
                          .disk_hits = disk_hits_,
                          .disk_errors = disk_errors_,
                          .disk_writes = disk_writes_};
}

}  // namespace semilocal

#include "engine/kernel_store.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/kernel_codec.hpp"
#include "core/serialize.hpp"

namespace semilocal {

KernelStore::KernelStore(KernelStoreOptions options)
    : options_(std::move(options)),
      env_(options_.env ? options_.env : &real_env()),
      cache_(options_.cache_bytes),
      blocks_decoded_(std::make_shared<std::atomic<std::uint64_t>>(0)) {
  if (options_.dir.empty()) return;
  env_->create_dirs(options_.dir);  // failure degrades to write failures later
  sweep_orphan_tmps();
}

std::string KernelStore::path_for(const PairKey& key) const {
  return options_.dir + "/" + key.hex() + ".slk";
}

void KernelStore::sweep_orphan_tmps() {
  // A writer that died between temp write and rename leaks `<key>.slk.tmpN`.
  // Those are invisible to readers (never renamed into place) but would
  // accumulate forever; remove them before serving. Every failure here is
  // ignorable -- an unswept orphan is a disk-space leak, not a correctness
  // problem.
  std::vector<std::string> names;
  try {
    names = env_->list_dir(options_.dir);
  } catch (const EnvError&) {
    return;
  }
  std::uint64_t swept = 0;
  for (const std::string& name : names) {
    if (name.find(".tmp") == std::string::npos) continue;
    try {
      env_->remove_file(options_.dir + "/" + name);
      ++swept;
    } catch (const EnvError&) {
    }
  }
  std::lock_guard lock(mutex_);
  tmp_swept_ += swept;
}

void KernelStore::quarantine(const std::string& path) {
  // Keep the poison for post-mortem inspection but make sure it is never
  // read again (and never blocks the recomputed kernel's rename). If the
  // move itself fails, fall back to deleting; if even that fails, the next
  // put() will simply rename a fresh kernel over it.
  bool moved = false;
  try {
    env_->rename_file(path, path + ".quarantined");
    moved = true;
  } catch (const EnvError&) {
    try {
      env_->remove_file(path);
      moved = true;
    } catch (const EnvError&) {
    }
  }
  std::lock_guard lock(mutex_);
  ++disk_errors_;
  if (moved) ++quarantined_;
}

CachedKernelPtr KernelStore::find(const PairKey& key) {
  CachedKernelPtr hot;
  {
    std::lock_guard lock(mutex_);
    if (CachedKernelPtr hit = cache_.get(key)) {
      if (!hit->is_compressed() || options_.promote_after_hits < 0) return hit;
      if (static_cast<int>(hit->touch()) < options_.promote_after_hits) {
        return hit;
      }
      // Hot enough to promote -- but only while the decoded tier has
      // headroom; a denied candidate keeps serving compressed (and will be
      // re-considered on its next hit).
      const std::size_t full = decoded_entry_bytes(hit->order());
      const auto cap = static_cast<std::size_t>(
          options_.promoted_fraction * static_cast<double>(options_.cache_bytes));
      if (cache_.decoded_bytes() + full > cap) return hit;
      hot = std::move(hit);
    }
  }
  if (hot) return promote(key, hot);
  if (options_.dir.empty()) return nullptr;
  return load_from_disk(key);
}

CachedKernelPtr KernelStore::promote(const PairKey& key,
                                     const CachedKernelPtr& entry) {
  // The full decode runs outside the lock (concurrent promoters of one key
  // are idempotent: last put wins, both produce the same kernel). The
  // compressed entry's lazy decode does the work and keeps serving in-flight
  // readers; the cache slot is then recharged at the decoded size.
  auto promoted = std::make_shared<const CachedKernel>(entry->kernel_ptr());
  std::lock_guard lock(mutex_);
  ++promotions_;
  cache_.put(key, promoted);
  return promoted;
}

CachedKernelPtr KernelStore::load_from_disk(const PairKey& key) {
  const std::string path = path_for(key);
  if (!env_->exists(path)) return nullptr;
  MappedFilePtr map;
  std::string owned;
  std::string_view bytes;
  if (options_.mmap_reads) {
    try {
      map = env_->map_file(path);
      bytes = map->view();
    } catch (const EnvError&) {
      std::lock_guard lock(mutex_);
      ++mmap_fallbacks_;
    }
  }
  if (!map) {
    try {
      owned = env_->read_file(path);
      bytes = owned;
    } catch (const EnvError&) {
      // Transient read failure: degrade to a miss (the caller recomputes)
      // but leave the file alone -- it may be perfectly healthy.
      std::lock_guard lock(mutex_);
      ++disk_errors_;
      return nullptr;
    }
  }
  // Cheap sanity check that the file really is the kernel of this pair's
  // lengths; a content-hash filename collision across sizes cannot happen
  // (lengths are part of the key), so a mismatch means a foreign file.
  // Corrupt and foreign files are both quarantined.
  CachedKernelPtr entry;
  bool compressed = false;
  try {
    if (kernel_format_version(bytes) == kKernelFormatV3) {
      // open() validates every checksum up front, so a torn mapping is
      // caught here -- decoding later cannot fail on corruption.
      CompressedKernelPtr blob =
          map ? CompressedKernel::open(bytes, map)
              : CompressedKernel::open(std::move(owned));
      if (blob->m() != key.len_a || blob->n() != key.len_b) {
        throw std::runtime_error("kernel dimensions do not match the key");
      }
      entry = std::make_shared<const CachedKernel>(std::move(blob), blocks_decoded_);
      compressed = true;
    } else {
      auto loaded = std::make_shared<const SemiLocalKernel>(load_kernel_bytes(bytes));
      if (loaded->m() != key.len_a || loaded->n() != key.len_b) {
        throw std::runtime_error("kernel dimensions do not match the key");
      }
      entry = std::make_shared<const CachedKernel>(std::move(loaded));
    }
  } catch (const std::exception&) {
    quarantine(path);
    return nullptr;
  }
  std::lock_guard lock(mutex_);
  ++disk_hits_;
  if (compressed) ++compressed_loads_;
  cache_.put(key, entry);
  return entry;
}

bool KernelStore::persist_one(const PairKey& key, const CachedKernel& entry) {
  const std::string path = path_for(key);
  std::string tmp;
  {
    // Unique temp name so concurrent writers of the same key can't
    // interleave into one file; the final rename is atomic within the
    // directory. The serial is per-store (not process-global) so temp names
    // -- and therefore fault traces -- are deterministic run-to-run.
    std::lock_guard lock(mutex_);
    tmp = path + ".tmp" + std::to_string(tmp_serial_++);
  }
  const std::string bytes = save_kernel_bytes(entry.kernel(), options_.format);
  try {
    env_->write_file(tmp, bytes);
    env_->rename_file(tmp, path);
  } catch (const EnvError&) {
    try {
      env_->remove_file(tmp);  // best-effort: a leak here is swept at restart
    } catch (const EnvError&) {
    }
    return false;
  }
  std::lock_guard lock(mutex_);
  bytes_on_disk_ += bytes.size();
  bytes_on_disk_raw_ += kernel_v2_encoded_bytes(entry.order());
  return true;
}

void KernelStore::put(const PairKey& key, CachedKernelPtr entry) {
  if (!entry) return;
  bool write_disk = false;
  {
    std::lock_guard lock(mutex_);
    cache_.put(key, entry);
    write_disk = options_.persist && !options_.dir.empty();
  }
  if (!write_disk) return;
  if (persist_one(key, *entry)) {
    std::lock_guard lock(mutex_);
    ++disk_writes_;
    pending_.erase(key);
    return;
  }
  // Degrade: the entry keeps serving from the cache; remember it (with a
  // retry budget) so retry_pending() can persist it once the fault clears.
  std::lock_guard lock(mutex_);
  ++write_failures_;
  if (options_.persist_retries <= 0) return;
  if (const auto it = pending_.find(key); it != pending_.end()) {
    it->second.entry = std::move(entry);  // keep the freshest pointer
    return;
  }
  if (pending_.size() >= options_.max_pending_persists) return;
  pending_.emplace(key,
                   PendingPersist{std::move(entry), options_.persist_retries});
}

std::size_t KernelStore::retry_pending() {
  std::lock_guard retry_lock(retry_mutex_);
  std::vector<std::pair<PairKey, CachedKernelPtr>> snapshot;
  {
    std::lock_guard lock(mutex_);
    if (pending_.empty()) return 0;
    snapshot.reserve(pending_.size());
    for (const auto& [key, p] : pending_) snapshot.emplace_back(key, p.entry);
  }
  std::size_t persisted = 0;
  for (const auto& [key, entry] : snapshot) {
    if (persist_one(key, *entry)) {
      ++persisted;
      std::lock_guard lock(mutex_);
      ++disk_writes_;
      pending_.erase(key);
    } else {
      std::lock_guard lock(mutex_);
      ++write_failures_;
      if (const auto it = pending_.find(key); it != pending_.end()) {
        if (--it->second.retries_left <= 0) pending_.erase(it);  // abandoned
      }
    }
  }
  return persisted;
}

bool KernelStore::on_disk(const PairKey& key) const {
  if (options_.dir.empty()) return false;
  return env_->exists(path_for(key));
}

KernelStoreStats KernelStore::stats() const {
  std::lock_guard lock(mutex_);
  return KernelStoreStats{
      .cache = cache_.stats(),
      .disk_hits = disk_hits_,
      .disk_errors = disk_errors_,
      .disk_writes = disk_writes_,
      .write_failures = write_failures_,
      .quarantined = quarantined_,
      .tmp_swept = tmp_swept_,
      .pending_persists = pending_.size(),
      .mmap_fallbacks = mmap_fallbacks_,
      .compressed_loads = compressed_loads_,
      .promotions = promotions_,
      .blocks_decoded = blocks_decoded_->load(std::memory_order_relaxed),
      .bytes_on_disk = bytes_on_disk_,
      .bytes_on_disk_raw = bytes_on_disk_raw_};
}

}  // namespace semilocal

#include "engine/kernel_store.hpp"

#include <utility>
#include <vector>

#include "core/serialize.hpp"

namespace semilocal {

KernelStore::KernelStore(KernelStoreOptions options)
    : options_(std::move(options)),
      env_(options_.env ? options_.env : &real_env()),
      cache_(options_.cache_bytes) {
  if (options_.dir.empty()) return;
  env_->create_dirs(options_.dir);  // failure degrades to write failures later
  sweep_orphan_tmps();
}

std::string KernelStore::path_for(const PairKey& key) const {
  return options_.dir + "/" + key.hex() + ".slk";
}

void KernelStore::sweep_orphan_tmps() {
  // A writer that died between temp write and rename leaks `<key>.slk.tmpN`.
  // Those are invisible to readers (never renamed into place) but would
  // accumulate forever; remove them before serving. Every failure here is
  // ignorable -- an unswept orphan is a disk-space leak, not a correctness
  // problem.
  std::vector<std::string> names;
  try {
    names = env_->list_dir(options_.dir);
  } catch (const EnvError&) {
    return;
  }
  std::uint64_t swept = 0;
  for (const std::string& name : names) {
    if (name.find(".tmp") == std::string::npos) continue;
    try {
      env_->remove_file(options_.dir + "/" + name);
      ++swept;
    } catch (const EnvError&) {
    }
  }
  std::lock_guard lock(mutex_);
  tmp_swept_ += swept;
}

void KernelStore::quarantine(const std::string& path) {
  // Keep the poison for post-mortem inspection but make sure it is never
  // read again (and never blocks the recomputed kernel's rename). If the
  // move itself fails, fall back to deleting; if even that fails, the next
  // put() will simply rename a fresh kernel over it.
  bool moved = false;
  try {
    env_->rename_file(path, path + ".quarantined");
    moved = true;
  } catch (const EnvError&) {
    try {
      env_->remove_file(path);
      moved = true;
    } catch (const EnvError&) {
    }
  }
  std::lock_guard lock(mutex_);
  ++disk_errors_;
  if (moved) ++quarantined_;
}

CachedKernelPtr KernelStore::find(const PairKey& key) {
  {
    std::lock_guard lock(mutex_);
    if (CachedKernelPtr hit = cache_.get(key)) return hit;
  }
  if (options_.dir.empty()) return nullptr;
  const std::string path = path_for(key);
  if (!env_->exists(path)) return nullptr;
  std::string bytes;
  try {
    bytes = env_->read_file(path);
  } catch (const EnvError&) {
    // Transient read failure: degrade to a miss (the caller recomputes) but
    // leave the file alone -- it may be perfectly healthy.
    std::lock_guard lock(mutex_);
    ++disk_errors_;
    return nullptr;
  }
  KernelPtr loaded;
  try {
    loaded = std::make_shared<const SemiLocalKernel>(load_kernel_bytes(bytes));
  } catch (const std::exception&) {
    quarantine(path);
    return nullptr;
  }
  // Cheap sanity check that the file really is the kernel of this pair's
  // lengths; a content-hash filename collision across sizes cannot happen
  // (lengths are part of the key), so a mismatch means a foreign file.
  if (loaded->m() != key.len_a || loaded->n() != key.len_b) {
    quarantine(path);
    return nullptr;
  }
  auto entry = std::make_shared<const CachedKernel>(std::move(loaded));
  std::lock_guard lock(mutex_);
  ++disk_hits_;
  cache_.put(key, entry);
  return entry;
}

bool KernelStore::persist_one(const PairKey& key, const CachedKernel& entry) {
  const std::string path = path_for(key);
  std::string tmp;
  {
    // Unique temp name so concurrent writers of the same key can't
    // interleave into one file; the final rename is atomic within the
    // directory. The serial is per-store (not process-global) so temp names
    // -- and therefore fault traces -- are deterministic run-to-run.
    std::lock_guard lock(mutex_);
    tmp = path + ".tmp" + std::to_string(tmp_serial_++);
  }
  try {
    env_->write_file(tmp, save_kernel_bytes(entry.kernel()));
    env_->rename_file(tmp, path);
  } catch (const EnvError&) {
    try {
      env_->remove_file(tmp);  // best-effort: a leak here is swept at restart
    } catch (const EnvError&) {
    }
    return false;
  }
  return true;
}

void KernelStore::put(const PairKey& key, CachedKernelPtr entry) {
  if (!entry) return;
  bool write_disk = false;
  {
    std::lock_guard lock(mutex_);
    cache_.put(key, entry);
    write_disk = options_.persist && !options_.dir.empty();
  }
  if (!write_disk) return;
  if (persist_one(key, *entry)) {
    std::lock_guard lock(mutex_);
    ++disk_writes_;
    pending_.erase(key);
    return;
  }
  // Degrade: the entry keeps serving from the cache; remember it (with a
  // retry budget) so retry_pending() can persist it once the fault clears.
  std::lock_guard lock(mutex_);
  ++write_failures_;
  if (options_.persist_retries <= 0) return;
  if (const auto it = pending_.find(key); it != pending_.end()) {
    it->second.entry = std::move(entry);  // keep the freshest pointer
    return;
  }
  if (pending_.size() >= options_.max_pending_persists) return;
  pending_.emplace(key,
                   PendingPersist{std::move(entry), options_.persist_retries});
}

std::size_t KernelStore::retry_pending() {
  std::lock_guard retry_lock(retry_mutex_);
  std::vector<std::pair<PairKey, CachedKernelPtr>> snapshot;
  {
    std::lock_guard lock(mutex_);
    if (pending_.empty()) return 0;
    snapshot.reserve(pending_.size());
    for (const auto& [key, p] : pending_) snapshot.emplace_back(key, p.entry);
  }
  std::size_t persisted = 0;
  for (const auto& [key, entry] : snapshot) {
    if (persist_one(key, *entry)) {
      ++persisted;
      std::lock_guard lock(mutex_);
      ++disk_writes_;
      pending_.erase(key);
    } else {
      std::lock_guard lock(mutex_);
      ++write_failures_;
      if (const auto it = pending_.find(key); it != pending_.end()) {
        if (--it->second.retries_left <= 0) pending_.erase(it);  // abandoned
      }
    }
  }
  return persisted;
}

bool KernelStore::on_disk(const PairKey& key) const {
  if (options_.dir.empty()) return false;
  return env_->exists(path_for(key));
}

KernelStoreStats KernelStore::stats() const {
  std::lock_guard lock(mutex_);
  return KernelStoreStats{.cache = cache_.stats(),
                          .disk_hits = disk_hits_,
                          .disk_errors = disk_errors_,
                          .disk_writes = disk_writes_,
                          .write_failures = write_failures_,
                          .quarantined = quarantined_,
                          .tmp_swept = tmp_swept_,
                          .pending_persists = pending_.size()};
}

}  // namespace semilocal

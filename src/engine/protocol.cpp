#include "engine/protocol.hpp"

#include <istream>
#include <ostream>
#include <span>

namespace semilocal {
namespace {

void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void append_i64(std::string& out, std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((u >> (8 * i)) & 0xff));
}

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  std::uint8_t u8() { return take(1)[0]; }

  std::uint32_t u32() {
    const auto bytes = take(4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | bytes[static_cast<std::size_t>(i)];
    return v;
  }

  std::int64_t i64() {
    const auto bytes = take(8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | bytes[static_cast<std::size_t>(i)];
    return static_cast<std::int64_t>(v);
  }

  Sequence sequence(std::size_t n) {
    const auto bytes = take(n);
    Sequence out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(static_cast<Symbol>(bytes[i]));
    return out;
  }

  std::string text(std::size_t n) {
    const auto bytes = take(n);
    return std::string(reinterpret_cast<const char*>(bytes.data()), n);
  }

  void expect_end() const {
    if (pos_ != data_.size()) throw ProtocolError("payload has trailing bytes");
  }

  [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }

 private:
  std::span<const unsigned char> take(std::size_t n) {
    if (data_.size() - pos_ < n) throw ProtocolError("payload truncated");
    const auto* base = reinterpret_cast<const unsigned char*>(data_.data()) + pos_;
    pos_ += n;
    return {base, n};
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

void append_sequence_bytes(std::string& out, SequenceView s) {
  for (const Symbol sym : s) out.push_back(static_cast<char>(sym & 0xff));
}

}  // namespace

void write_frame(std::ostream& out, std::string_view payload) {
  // One buffer, one write: over an unbuffered socket stream, a separate
  // 4-byte header write would cost a Nagle/delayed-ACK round trip per frame.
  const std::string frame = frame_payload(payload);
  out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  out.flush();
  if (!out) throw std::runtime_error("write_frame: stream failure");
}

std::optional<std::string> read_frame(std::istream& in) {
  char header[4];
  in.read(header, 1);
  if (in.gcount() == 0) return std::nullopt;  // clean EOF between frames
  in.read(header + 1, 3);
  if (!in || in.gcount() != 3) throw ProtocolError("truncated frame header");
  std::uint32_t len = 0;
  for (int i = 3; i >= 0; --i) {
    len = (len << 8) | static_cast<unsigned char>(header[i]);
  }
  if (len > kMaxFrameBytes) throw ProtocolError("frame length exceeds limit");
  std::string payload(len, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(len));
  if (!in || in.gcount() != static_cast<std::streamsize>(len)) {
    throw ProtocolError("truncated frame payload");
  }
  return payload;
}

std::string frame_payload(std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw ProtocolError("frame payload exceeds limit");
  }
  std::string frame;
  frame.reserve(4 + payload.size());
  append_u32(frame, static_cast<std::uint32_t>(payload.size()));
  frame += payload;
  return frame;
}

std::string encode_request(const Request& request) {
  if (request.windows.size() > kMaxBatchWindows) {
    throw ProtocolError("batch window count exceeds limit");
  }
  if (request.op == Op::kAlignmentPlot) {
    if (!request.plot) throw ProtocolError("plot request without a plot spec");
    if (const char* err = validate_plot_spec(*request.plot)) throw ProtocolError(err);
  }
  std::string out;
  out.reserve(25 + request.a.size() + request.b.size() + 17 * request.windows.size() +
              (request.plot ? 33 : 0));
  out.push_back(static_cast<char>(request.op));
  append_i64(out, request.x);
  append_i64(out, request.y);
  append_u32(out, static_cast<std::uint32_t>(request.a.size()));
  append_u32(out, static_cast<std::uint32_t>(request.b.size()));
  append_sequence_bytes(out, request.a);
  append_sequence_bytes(out, request.b);
  append_u32(out, static_cast<std::uint32_t>(request.windows.size()));
  for (const WindowQuery& w : request.windows) {
    out.push_back(static_cast<char>(w.kind));
    append_i64(out, w.x);
    append_i64(out, w.y);
  }
  if (request.plot) {
    const PlotSpec& p = *request.plot;
    append_i64(out, p.row0);
    append_i64(out, p.col0);
    append_u32(out, static_cast<std::uint32_t>(p.rows));
    append_u32(out, static_cast<std::uint32_t>(p.cols));
    append_u32(out, static_cast<std::uint32_t>(p.step));
    append_u32(out, static_cast<std::uint32_t>(p.window));
    out.push_back(static_cast<char>(p.quant));
  }
  return out;
}

Request decode_request(std::string_view payload) {
  Reader reader(payload);
  Request request;
  const auto op = reader.u8();
  switch (static_cast<Op>(op)) {
    case Op::kPing:
    case Op::kLcs:
    case Op::kStringSubstring:
    case Op::kSubstringString:
    case Op::kStats:
    case Op::kBatchQuery:
    case Op::kHealth:
    case Op::kShardCtl:
    case Op::kAlignmentPlot:
    case Op::kUpsert:
      request.op = static_cast<Op>(op);
      break;
    default:
      throw ProtocolError("unknown request op " + std::to_string(op));
  }
  request.x = reader.i64();
  request.y = reader.i64();
  const std::uint32_t la = reader.u32();
  const std::uint32_t lb = reader.u32();
  request.a = reader.sequence(la);
  request.b = reader.sequence(lb);
  const std::uint32_t wins = reader.u32();
  if (wins > kMaxBatchWindows) throw ProtocolError("batch window count exceeds limit");
  request.windows.reserve(wins);
  for (std::uint32_t i = 0; i < wins; ++i) {
    WindowQuery w;
    const auto kind = reader.u8();
    switch (static_cast<QueryKind>(kind)) {
      case QueryKind::kLcs:
      case QueryKind::kStringSubstring:
      case QueryKind::kSubstringString:
        w.kind = static_cast<QueryKind>(kind);
        break;
      default:
        throw ProtocolError("unknown window query kind " + std::to_string(kind));
    }
    w.x = reader.i64();
    w.y = reader.i64();
    request.windows.push_back(w);
  }
  if (request.op == Op::kAlignmentPlot) {
    // Hostile dimensions die here, before the engine sees the request --
    // the plot twin of the kMaxBatchWindows cap above.
    PlotSpec plot;
    plot.row0 = reader.i64();
    plot.col0 = reader.i64();
    plot.rows = static_cast<Index>(reader.u32());
    plot.cols = static_cast<Index>(reader.u32());
    plot.step = static_cast<Index>(reader.u32());
    plot.window = static_cast<Index>(reader.u32());
    plot.quant = reader.u8();
    if (const char* err = validate_plot_spec(plot)) throw ProtocolError(err);
    request.plot = plot;
  }
  reader.expect_end();
  return request;
}

std::string encode_response(const Response& response) {
  if (response.values.size() > kMaxBatchWindows) {
    throw ProtocolError("batch value count exceeds limit");
  }
  if (response.tile) {
    const PlotTile& t = *response.tile;
    const std::size_t cells =
        static_cast<std::size_t>(t.rows) * static_cast<std::size_t>(t.cols);
    if (t.rows < 1 || t.cols < 1 || cells > static_cast<std::size_t>(kMaxPlotTileCells)) {
      throw ProtocolError("plot tile dimensions exceed limit");
    }
    if (t.quant != 8 && t.quant != 16) throw ProtocolError("plot tile: bad quant");
    if (t.cells.size() != cells * (t.quant == 16 ? 2 : 1)) {
      throw ProtocolError("plot tile: cell byte count mismatch");
    }
  }
  std::string out;
  out.reserve(25 + response.text.size() + 8 * response.values.size() +
              (response.tile ? 30 + response.tile->cells.size() : 0));
  out.push_back(static_cast<char>(response.status));
  append_i64(out, response.value);
  append_i64(out, response.retry_ms);
  append_u32(out, static_cast<std::uint32_t>(response.text.size()));
  out += response.text;
  append_u32(out, static_cast<std::uint32_t>(response.values.size()));
  for (const Index v : response.values) append_i64(out, v);
  append_u32(out, static_cast<std::uint32_t>(response.shard));
  if (response.tile) {
    const PlotTile& t = *response.tile;
    append_i64(out, t.row0);
    append_i64(out, t.col0);
    append_u32(out, t.rows);
    append_u32(out, t.cols);
    out.push_back(static_cast<char>(t.quant));
    out.push_back(static_cast<char>(t.last ? 1 : 0));
    append_u32(out, static_cast<std::uint32_t>(t.cells.size()));
    out += t.cells;
  }
  return out;
}

Response decode_response(std::string_view payload) {
  Reader reader(payload);
  Response response;
  const auto status = reader.u8();
  switch (static_cast<Status>(status)) {
    case Status::kOk:
    case Status::kError:
    case Status::kOverloaded:
      response.status = static_cast<Status>(status);
      break;
    default:
      throw ProtocolError("unknown response status " + std::to_string(status));
  }
  response.value = reader.i64();
  response.retry_ms = reader.i64();
  const std::uint32_t len = reader.u32();
  response.text = reader.text(len);
  const std::uint32_t vals = reader.u32();
  if (vals > kMaxBatchWindows) throw ProtocolError("batch value count exceeds limit");
  response.values.reserve(vals);
  for (std::uint32_t i = 0; i < vals; ++i) response.values.push_back(reader.i64());
  response.shard = static_cast<std::int32_t>(reader.u32());
  if (!reader.at_end()) {
    // Optional trailing tile block (kAlignmentPlot streams); absent frames
    // end at the shard id, which keeps pre-plot peers decodable.
    PlotTile tile;
    tile.row0 = reader.i64();
    tile.col0 = reader.i64();
    tile.rows = reader.u32();
    tile.cols = reader.u32();
    tile.quant = reader.u8();
    const auto last = reader.u8();
    if (last > 1) throw ProtocolError("plot tile: bad last flag");
    tile.last = last == 1;
    if (tile.quant != 8 && tile.quant != 16) throw ProtocolError("plot tile: bad quant");
    const std::size_t cells =
        static_cast<std::size_t>(tile.rows) * static_cast<std::size_t>(tile.cols);
    if (tile.rows < 1 || tile.cols < 1 ||
        cells > static_cast<std::size_t>(kMaxPlotTileCells)) {
      throw ProtocolError("plot tile dimensions exceed limit");
    }
    const std::uint32_t nbytes = reader.u32();
    if (nbytes != cells * (tile.quant == 16 ? 2 : 1)) {
      throw ProtocolError("plot tile: cell byte count mismatch");
    }
    tile.cells = reader.text(nbytes);
    if (tile.row0 < 0 || tile.col0 < 0) throw ProtocolError("plot tile: negative origin");
    response.tile = std::move(tile);
  }
  reader.expect_end();
  return response;
}

}  // namespace semilocal

// The comparison engine: store + cache + scheduler behind one facade.
//
// A ComparisonEngine is the long-lived object a server holds: it owns the
// kernel store (disk tier + LRU cache), the batching scheduler, and the
// latency samples, and exposes the query layer that answers LCS-score and
// substring-LCS requests straight off cached kernels. The flow per request:
//
//   request --> content hash --> cache hit? ----------------> answer
//                                  | miss
//                                  v
//                            disk hit? (load, promote) -----> answer
//                                  | miss
//                                  v
//                            scheduler (coalesce, batch,
//                            bounded queue) --> compute -----> store.put
//
// Repeated pairs therefore cost one computation for the lifetime of the
// store -- the engine stats counters make that auditable (computed stays at
// the number of distinct pairs while requests grows).
#pragma once

#include <atomic>
#include <future>

#include "engine/kernel_store.hpp"
#include "engine/latency.hpp"
#include "engine/query.hpp"
#include "engine/scheduler.hpp"

namespace semilocal {

struct EngineOptions {
  KernelStoreOptions store;
  SchedulerOptions scheduler;
};

struct EngineStats {
  std::uint64_t requests = 0;  ///< kernel acquisitions (all query kinds)
  KernelStoreStats store;
  SchedulerStats scheduler;
  LatencyRecorder::Percentiles latency;

  /// Fraction of requests served from the in-memory cache.
  [[nodiscard]] double cache_hit_rate() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(store.cache.hits) / static_cast<double>(requests);
  }
};

class ComparisonEngine {
 public:
  explicit ComparisonEngine(EngineOptions options = {});

  /// The kernel of (a, b): cache, then disk, then scheduled compute.
  /// Blocking; throws EngineOverloaded under backpressure.
  KernelPtr kernel(SequenceView a, SequenceView b);

  /// Non-blocking variant: the future resolves when the kernel is ready.
  /// Cache and disk hits return an already-resolved future.
  std::shared_future<KernelPtr> kernel_async(SequenceView a, SequenceView b);

  /// Query layer: answers off the (possibly cached) kernel via the
  /// stateless thread-safe scans in engine/query.hpp.
  Index lcs(SequenceView a, SequenceView b);
  Index string_substring(SequenceView a, SequenceView b, Index j0, Index j1);
  Index substring_string(SequenceView a, SequenceView b, Index i0, Index i1);

  [[nodiscard]] EngineStats stats() const;

  /// Runs queued work on the calling thread (see KernelScheduler::drain).
  std::size_t drain() { return scheduler_.drain(); }

  [[nodiscard]] KernelStore& store() { return store_; }

 private:
  KernelStore store_;
  LatencyRecorder latency_;
  KernelScheduler scheduler_;
  std::atomic<std::uint64_t> requests_{0};
};

}  // namespace semilocal

// The comparison engine: store + cache + scheduler behind one facade.
//
// A ComparisonEngine is the long-lived object a server holds: it owns the
// kernel store (disk tier + LRU cache), the batching scheduler, the query
// counters, and the latency samples, and exposes the query layer that
// answers LCS-score and substring-LCS requests straight off cached kernels.
// The flow per request:
//
//   request --> content hash --> cache hit? ----------------> answer
//                                  | miss
//                                  v
//                            disk hit? (load, promote) -----> answer
//                                  | miss
//                                  v
//                            scheduler (coalesce, batch,
//                            bounded queue) --> compute -----> store.put
//
// Repeated pairs therefore cost one computation for the lifetime of the
// store -- the engine stats counters make that auditable (computed stays at
// the number of distinct pairs while requests grows).
//
// Every cached entry carries a shared immutable QueryIndex (built once,
// read lock-free; see engine/query.hpp), so on the warm path queries cost
// O(log n) instead of the O(m + n) dominance scan. `index_queries = false`
// forces the scan path -- the ablation knob the benchmarks flip.
#pragma once

#include <atomic>
#include <functional>
#include <future>
#include <vector>

#include "engine/kernel_store.hpp"
#include "engine/latency.hpp"
#include "engine/query.hpp"
#include "engine/scheduler.hpp"

namespace semilocal {

struct EngineOptions {
  KernelStoreOptions store;
  SchedulerOptions scheduler;
  /// Route queries through each entry's QueryIndex (O(log n), built once).
  /// false = always use the O(m + n) dominance scan.
  bool index_queries = true;
  /// Alignment plots: share the wavelet descent across each grid row via the
  /// strided seam walk. false = lower every cell as an independent window
  /// query -- the ablation knob the plot bench flips.
  bool plot_planner = true;
  /// Target cells per streamed plot tile (clamped to kMaxPlotTileCells).
  /// Small values force multi-tile streams; tests use that to exercise
  /// reassembly and backpressure.
  Index plot_tile_cells = Index{1} << 16;
  /// Filesystem + clock the whole engine runs on (store I/O, scheduler and
  /// lookup latency clocks). nullptr = real_env(). A non-null store.env /
  /// scheduler.env takes precedence for that component.
  Env* env = nullptr;
};

/// stats_json format version; bumped when fields change meaning (additions
/// do not bump it). Health probes use it to refuse incompatible peers.
inline constexpr std::int64_t kStatsVersion = 2;

struct EngineStats {
  std::uint64_t requests = 0;  ///< kernel acquisitions (all query kinds)
  KernelStoreStats store;
  SchedulerStats scheduler;
  QueryStats queries;
  LatencyRecorder::Percentiles latency;
  /// Identity fields for health probes: a restarted backend shows a new pid
  /// and a reset uptime, which shardctl status and the router prober report.
  std::uint64_t uptime_ms = 0;
  std::int64_t pid = 0;

  /// Fraction of requests served from the in-memory cache.
  [[nodiscard]] double cache_hit_rate() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(store.cache.hits) / static_cast<double>(requests);
  }
};

/// The stats endpoint's JSON rendering (one flat object; used by
/// semilocal_serve's kStats op and pinned by the fault-injection tests).
/// Includes the degradation counters: store_write_failures,
/// store_quarantined, store_pending_persists, and degraded_mode (1 while
/// any entry is cache-only awaiting a persist retry).
std::string stats_json(const EngineStats& stats);

/// Compact identity document answered on Op::kHealth: stats_version, pid,
/// uptime_ms, requests. A prober that remembers (pid, uptime_ms) can tell a
/// restarted backend (new pid, or the same pid with a smaller uptime) from a
/// live one without pulling the full stats object.
std::string health_json(const EngineStats& stats);

class ComparisonEngine {
 public:
  explicit ComparisonEngine(EngineOptions options = {});

  /// The cached entry (kernel + its once-built QueryIndex) of (a, b):
  /// cache, then disk, then scheduled compute. Blocking; throws
  /// EngineOverloaded under backpressure.
  CachedKernelPtr entry(SequenceView a, SequenceView b);

  /// Non-blocking variant: the future resolves when the entry is ready.
  /// Cache and disk hits return an already-resolved future.
  std::shared_future<CachedKernelPtr> entry_async(SequenceView a, SequenceView b);

  /// The bare kernel of (a, b). Same acquisition path as entry().
  KernelPtr kernel(SequenceView a, SequenceView b);

  /// Query layer: answers off the (possibly cached) entry, routed through
  /// the QueryIndex or the dominance scan per `index_queries`.
  Index lcs(SequenceView a, SequenceView b);
  Index string_substring(SequenceView a, SequenceView b, Index j0, Index j1);
  Index substring_string(SequenceView a, SequenceView b, Index i0, Index i1);

  /// One window off an already-acquired entry (serving fast path: acquire
  /// once, answer many). Routing and counters as above.
  Index answer(const CachedKernel& entry, QueryKind kind, Index x, Index y);

  /// k windows over one pair: acquires the entry once, answers all windows
  /// through the interleaved batch descent (or the scan loop when indexing
  /// is off). This backs the batched protocol op.
  std::vector<Index> answer_batch(SequenceView a, SequenceView b,
                                  const std::vector<WindowQuery>& windows);

  /// Same, off an already-acquired entry (the server's batch handler).
  std::vector<Index> answer_batch(const CachedKernel& entry,
                                  const std::vector<WindowQuery>& windows);

  /// Streams the alignment plot of `spec` over (a, b): cell (u, v) =
  /// LCS(a[row0 + u*step, +window), b[col0 + v*step, +window)), delivered
  /// row-major as quantized tiles of at most plot_tile_cells cells each
  /// through `emit` (the final tile has `last` set). The grid never
  /// materializes whole: each grid row needs one strip kernel (a-window, b),
  /// acquired through the normal cache/scheduler path with a bounded
  /// prefetch fan-out, so rows compute in parallel across workers and
  /// repeated plots hit the LRU. `emit` returning false cancels the stream
  /// (no further tiles, no terminal frame). Throws std::out_of_range on a
  /// bad spec/extent and EngineOverloaded under scheduler backpressure.
  /// `drain_inline` runs queued compute on this thread (workers = 0 mode).
  void alignment_plot(SequenceView a, SequenceView b, const PlotSpec& spec,
                      const std::function<bool(PlotTile&&)>& emit,
                      bool drain_inline = false);

  [[nodiscard]] EngineStats stats() const;

  /// Runs queued work on the calling thread (see KernelScheduler::drain).
  std::size_t drain() { return scheduler_.drain(); }

  [[nodiscard]] KernelStore& store() { return store_; }

 private:
  /// entry_async with the content key already computed. The alignment-plot
  /// planner digests `b` once per plot instead of once per grid row -- at
  /// dense strides the per-row re-digest would otherwise rival the query
  /// work itself. `key` must equal make_pair_key(a, b).
  std::shared_future<CachedKernelPtr> entry_async_keyed(const PairKey& key,
                                                        SequenceView a,
                                                        SequenceView b);

  EngineOptions options_;
  Env* env_;
  KernelStore store_;
  LatencyRecorder latency_;
  QueryCounters counters_;
  KernelScheduler scheduler_;
  std::uint64_t start_ns_ = 0;  ///< construction time; stats() uptime base
  std::atomic<std::uint64_t> requests_{0};
};

}  // namespace semilocal

#include "engine/lru_cache.hpp"

namespace semilocal {

std::size_t kernel_resident_bytes(const SemiLocalKernel& kernel) {
  const auto order = static_cast<std::size_t>(kernel.order());
  // row_to_col + col_to_row entries, plus object/bookkeeping overhead.
  return 2 * order * sizeof(Permutation::Entry) + 128;
}

CachedKernelPtr LruKernelCache::get(const PairKey& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;
}

void LruKernelCache::put(const PairKey& key, CachedKernelPtr entry) {
  if (!entry) return;
  const std::size_t bytes = entry->resident_bytes();
  if (bytes > budget_) return;  // would evict everything and still not fit
  if (const auto it = index_.find(key); it != index_.end()) {
    bytes_ -= it->second->bytes;
    bytes_ += bytes;
    it->second->value = std::move(entry);
    it->second->bytes = bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, std::move(entry), bytes});
    index_.emplace(key, lru_.begin());
    bytes_ += bytes;
  }
  evict_to_budget();
}

void LruKernelCache::evict_to_budget() {
  while (bytes_ > budget_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

LruCacheStats LruKernelCache::stats() const {
  return LruCacheStats{.hits = hits_,
                       .misses = misses_,
                       .evictions = evictions_,
                       .entries = lru_.size(),
                       .bytes = bytes_,
                       .budget_bytes = budget_};
}

}  // namespace semilocal

#include "engine/lru_cache.hpp"

namespace semilocal {

std::size_t kernel_resident_bytes(Index order) {
  // row_to_col + col_to_row entries, plus object/bookkeeping overhead.
  return 2 * static_cast<std::size_t>(order) * sizeof(Permutation::Entry) + 128;
}

std::size_t decoded_entry_bytes(Index order) {
  return kernel_resident_bytes(order) + QueryIndex::projected_bytes(order);
}

CachedKernelPtr LruKernelCache::get(const PairKey& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;
}

void LruKernelCache::put(const PairKey& key, CachedKernelPtr entry) {
  if (!entry) return;
  const std::size_t bytes = entry->resident_bytes();
  const bool compressed = entry->is_compressed();
  if (bytes > budget_) return;  // would evict everything and still not fit
  if (const auto it = index_.find(key); it != index_.end()) {
    Entry& slot = *it->second;
    bytes_ -= slot.bytes;
    if (slot.compressed) {
      compressed_bytes_ -= slot.bytes;
      --compressed_entries_;
    }
    slot.value = std::move(entry);
    slot.bytes = bytes;
    slot.compressed = compressed;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, std::move(entry), bytes, compressed});
    index_.emplace(key, lru_.begin());
  }
  bytes_ += bytes;
  if (compressed) {
    compressed_bytes_ += bytes;
    ++compressed_entries_;
  }
  evict_to_budget();
}

void LruKernelCache::evict_to_budget() {
  while (bytes_ > budget_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    if (victim.compressed) {
      compressed_bytes_ -= victim.bytes;
      --compressed_entries_;
    }
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

LruCacheStats LruKernelCache::stats() const {
  return LruCacheStats{.hits = hits_,
                       .misses = misses_,
                       .evictions = evictions_,
                       .entries = lru_.size(),
                       .bytes = bytes_,
                       .budget_bytes = budget_,
                       .compressed_entries = compressed_entries_,
                       .compressed_bytes = compressed_bytes_};
}

}  // namespace semilocal

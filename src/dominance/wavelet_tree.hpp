// Wavelet tree: dominance counting in O(log n) with O(n log n) bits.
//
// The second of the classical range-counting structures referenced by the
// paper (footnote 1) for querying the implicit semi-local LCS matrix. It
// improves on the merge-sort tree (mergesort_tree.hpp) by a log factor per
// query at the price of a slightly more expensive build, and stores bits
// instead of whole column indices.
#pragma once

#include <cstdint>
#include <vector>

#include "braid/permutation.hpp"
#include "util/bits.hpp"
#include "util/types.hpp"

namespace semilocal {

/// Bit vector with O(1) rank support (one popcount-accumulated prefix per
/// 64-bit word).
class RankBitvector {
 public:
  RankBitvector() = default;
  explicit RankBitvector(Index bits);

  void set(Index pos) {
    bits_[static_cast<std::size_t>(pos / kWordBits)] |= Word{1} << (pos % kWordBits);
  }

  /// Must be called once after all set() calls, before any rank query.
  void finalize();

  [[nodiscard]] bool get(Index pos) const {
    return (bits_[static_cast<std::size_t>(pos / kWordBits)] >> (pos % kWordBits)) & 1;
  }

  /// Number of 1-bits in [0, pos).
  [[nodiscard]] Index rank1(Index pos) const {
    const Index word = pos / kWordBits;
    return ranks_[static_cast<std::size_t>(word)] +
           popcount(bits_[static_cast<std::size_t>(word)] &
                    low_mask(static_cast<int>(pos % kWordBits)));
  }

  /// Number of 0-bits in [0, pos).
  [[nodiscard]] Index rank0(Index pos) const { return pos - rank1(pos); }

  [[nodiscard]] Index size() const { return size_; }

 private:
  Index size_ = 0;
  std::vector<Word> bits_;
  std::vector<Index> ranks_;  // 1-bits before each word
};

/// Static wavelet tree over the column indices of a permutation, supporting
/// sigma(i, j) = |{(r, c) : r >= i, c < j}| in O(log n).
class WaveletTree {
 public:
  explicit WaveletTree(const Permutation& p);

  /// Dominance count, O(log n).
  [[nodiscard]] Index count(Index i, Index j) const;

  [[nodiscard]] Index size() const { return n_; }
  [[nodiscard]] int levels() const { return levels_; }

 private:
  // Count of values < j among positions [lo, hi) of the original array.
  [[nodiscard]] Index count_less(Index lo, Index hi, Index j) const;

  Index n_ = 0;
  int levels_ = 0;
  std::vector<RankBitvector> level_bits_;  // bit of the value at each level, MSB first
  std::vector<Index> level_zeros_;         // number of 0-bits per level
};

}  // namespace semilocal

// Wavelet tree: dominance counting in O(log n) with O(n log n) bits.
//
// The second of the classical range-counting structures referenced by the
// paper (footnote 1) for querying the implicit semi-local LCS matrix. It
// improves on the merge-sort tree (mergesort_tree.hpp) by a log factor per
// query at the price of a slightly more expensive build, and stores bits
// instead of whole column indices.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "braid/permutation.hpp"
#include "util/bits.hpp"
#include "util/types.hpp"

namespace semilocal {

/// Bit vector with O(1) rank support (one popcount-accumulated prefix per
/// 64-bit word).
class RankBitvector {
 public:
  RankBitvector() = default;
  explicit RankBitvector(Index bits);

  void set(Index pos) {
    bits_[static_cast<std::size_t>(pos / kWordBits)] |= Word{1} << (pos % kWordBits);
  }

  /// Must be called once after all set() calls, before any rank query.
  void finalize();

  [[nodiscard]] bool get(Index pos) const {
    return (bits_[static_cast<std::size_t>(pos / kWordBits)] >> (pos % kWordBits)) & 1;
  }

  /// Number of 1-bits in [0, pos).
  [[nodiscard]] Index rank1(Index pos) const {
    const Index word = pos / kWordBits;
    return ranks_[static_cast<std::size_t>(word)] +
           popcount(bits_[static_cast<std::size_t>(word)] &
                    low_mask(static_cast<int>(pos % kWordBits)));
  }

  /// Number of 0-bits in [0, pos).
  [[nodiscard]] Index rank0(Index pos) const { return pos - rank1(pos); }

  [[nodiscard]] Index size() const { return size_; }

  /// Heap bytes held by the bit words and the rank directory.
  [[nodiscard]] std::size_t resident_bytes() const {
    return bits_.size() * sizeof(Word) + ranks_.size() * sizeof(Index);
  }

 private:
  Index size_ = 0;
  std::vector<Word> bits_;
  std::vector<Index> ranks_;  // 1-bits before each word
};

/// Static wavelet tree over the column indices of a permutation, supporting
/// sigma(i, j) = |{(r, c) : r >= i, c < j}| in O(log n).
class WaveletTree {
 public:
  explicit WaveletTree(const Permutation& p);

  /// Dominance count, O(log n).
  [[nodiscard]] Index count(Index i, Index j) const;

  [[nodiscard]] Index size() const { return n_; }
  [[nodiscard]] int levels() const { return levels_; }

  /// Heap bytes across all per-level bitvectors.
  [[nodiscard]] std::size_t resident_bytes() const {
    std::size_t total = level_zeros_.size() * sizeof(Index);
    for (const RankBitvector& bv : level_bits_) total += bv.resident_bytes();
    return total;
  }

 private:
  // Count of values < j among positions [lo, hi) of the original array.
  [[nodiscard]] Index count_less(Index lo, Index hi, Index j) const;

  Index n_ = 0;
  int levels_ = 0;
  std::vector<RankBitvector> level_bits_;  // bit of the value at each level, MSB first
  std::vector<Index> level_zeros_;         // number of 0-bits per level
};

/// Flattened wavelet tree: the same O(log n) dominance counting as
/// WaveletTree, with every level's bits, superblock ranks, and per-word rank
/// offsets packed into ONE allocation.
///
/// This is the structure the serving path shares across threads (see
/// core/query_index.hpp): immutable after construction, so any number of
/// readers may query it lock-free, and a single contiguous pool keeps the
/// per-kernel footprint exactly predictable (projected_bytes) -- the LRU
/// cache charges an index against its byte budget before it is even built.
///
/// Rank layout per level: a u64 cumulative rank per 8-word (512-bit)
/// superblock plus a u16 in-superblock offset per word, so rank1 is two
/// array loads and one hardware popcount -- no scan. This halves the rank
/// directory relative to RankBitvector's u64-per-word prefix array.
///
/// Kernel queries are always suffix counts (sigma's range ends at n), so
/// the range's upper boundary descends along j's bit path through node
/// interval ends only; a per-node directory (end position + rank1(end)
/// packed in one u64, heap order) replaces that whole rank chain with one
/// load, leaving a single rank per level.
class FlatWaveletTree {
 public:
  FlatWaveletTree() = default;
  explicit FlatWaveletTree(const Permutation& p);

  /// Dominance count sigma(i, j) = |{(r, c) : r >= i, c < j}|, O(log n).
  [[nodiscard]] Index count(Index i, Index j) const;

  /// Batched count: out[t] = count(is[t], js[t]) for t in [0, queries).
  /// Interleaves several descents so their rank-load chains overlap -- a
  /// single descent is latency-bound on the serial per-level dependency, so
  /// a 64-window protocol frame answers markedly faster through this path
  /// than through `queries` independent count() calls.
  void count_many(const Index* is, const Index* js, Index* out,
                  std::size_t queries) const;

  [[nodiscard]] Index size() const { return n_; }
  [[nodiscard]] int levels() const { return levels_; }

  /// Heap bytes of the pooled storage (equals projected_bytes(size())).
  [[nodiscard]] std::size_t resident_bytes() const;

  /// Pool bytes a tree over a permutation of order n will occupy, computable
  /// without building it (used for cache byte accounting).
  [[nodiscard]] static std::size_t projected_bytes(Index n);

 private:
  static constexpr Index kSuperWords = 8;  // 512-bit superblocks

  /// 1-bits in [0, pos) of the given level's bitvector.
  [[nodiscard]] Index rank1(int level, Index pos) const;

  /// Count of values < j among positions [lo, n) of the original array;
  /// callers guarantee 0 <= lo <= n and 0 < j < n. Only suffix ranges are
  /// supported: the range's upper boundary is then always the end of the
  /// node j's bit path visits, whose rank is precomputed in the node
  /// directory -- one rank chain per level instead of two.
  [[nodiscard]] Index count_suffix_less(Index lo, Index j) const;

  [[nodiscard]] const Word* level_words(int level) const {
    return pool_.data() + static_cast<std::size_t>(level) * words_per_level_;
  }
  [[nodiscard]] const std::uint64_t* supers() const {
    return pool_.data() + static_cast<std::size_t>(levels_) * words_per_level_;
  }
  [[nodiscard]] const std::uint16_t* offsets() const {
    return reinterpret_cast<const std::uint16_t*>(
        supers() + static_cast<std::size_t>(levels_) * supers_per_level_);
  }
  // Node directory, heap order (root 0, children 2k+1 / 2k+2): each entry
  // packs the node interval's end position in the level's concatenated
  // array (low 32 bits) and the level-global rank1 of that end (high 32).
  // A suffix query's upper boundary descends exactly along j's bit path, so
  // these two constants replace its whole rank computation.
  [[nodiscard]] const std::uint64_t* node_dir() const {
    const std::size_t offset_words =
        (static_cast<std::size_t>(levels_) * words_per_level_ + 3) / 4;
    return supers() + static_cast<std::size_t>(levels_) * supers_per_level_ +
           offset_words;
  }

  Index n_ = 0;
  int levels_ = 0;
  std::size_t words_per_level_ = 0;
  std::size_t supers_per_level_ = 0;
  // [ bits: levels x words | superblock ranks: levels x supers (u64)
  //   | word offsets: levels x words (u16, padded to a word boundary)
  //   | node directory: 2^levels - 1 entries (u64) ]
  std::vector<Word> pool_;
  std::vector<Index> level_zeros_;  // number of 0-bits per level
};

}  // namespace semilocal

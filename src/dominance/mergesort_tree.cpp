#include "dominance/mergesort_tree.hpp"

#include <algorithm>

namespace semilocal {

MergesortTree::MergesortTree(const Permutation& p) : n_(p.size()) {
  leaves_ = 1;
  while (leaves_ < std::max<Index>(n_, 1)) leaves_ *= 2;
  nodes_.assign(static_cast<std::size_t>(2 * leaves_), {});
  for (Index r = 0; r < n_; ++r) {
    const auto c = p.col_of(r);
    if (c != Permutation::kNone) {
      nodes_[static_cast<std::size_t>(leaves_ + r)].push_back(c);
    }
  }
  for (Index node = leaves_ - 1; node >= 1; --node) {
    const auto& left = nodes_[static_cast<std::size_t>(2 * node)];
    const auto& right = nodes_[static_cast<std::size_t>(2 * node + 1)];
    auto& merged = nodes_[static_cast<std::size_t>(node)];
    merged.resize(left.size() + right.size());
    std::merge(left.begin(), left.end(), right.begin(), right.end(), merged.begin());
  }
}

Index MergesortTree::count(Index i, Index j) const {
  // Count cols < j among rows in [i, n_): decompose [i, leaves_) into
  // O(log n) canonical nodes (rows >= n_ hold no values).
  if (n_ == 0 || i >= n_ || j <= 0) return 0;
  Index lo = leaves_ + std::max<Index>(i, 0);
  Index hi = 2 * leaves_;  // exclusive
  Index total = 0;
  const auto count_in = [&](Index node) {
    const auto& vals = nodes_[static_cast<std::size_t>(node)];
    total += static_cast<Index>(
        std::lower_bound(vals.begin(), vals.end(), static_cast<std::int32_t>(j)) -
        vals.begin());
  };
  while (lo < hi) {
    if (lo & 1) count_in(lo++);
    if (hi & 1) count_in(--hi);
    lo /= 2;
    hi /= 2;
  }
  return total;
}

std::size_t MergesortTree::stored_elements() const {
  std::size_t total = 0;
  for (const auto& node : nodes_) total += node.size();
  return total;
}

}  // namespace semilocal

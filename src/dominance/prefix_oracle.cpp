#include "dominance/prefix_oracle.hpp"

namespace semilocal {

DensePrefixOracle::DensePrefixOracle(const Permutation& p) : n_(p.size()) {
  table_.assign(static_cast<std::size_t>((n_ + 1) * (n_ + 1)), 0);
  const auto at = [&](Index i, Index j) -> Index& {
    return table_[static_cast<std::size_t>(i * (n_ + 1) + j)];
  };
  for (Index i = n_ - 1; i >= 0; --i) {
    const auto c = p.col_of(i);
    for (Index j = 0; j <= n_; ++j) {
      at(i, j) = at(i + 1, j) + ((c != Permutation::kNone && c < j) ? 1 : 0);
    }
  }
}

}  // namespace semilocal

#include "dominance/wavelet_tree.hpp"

#include <algorithm>

namespace semilocal {

// One pad word beyond size_ keeps rank1(size_) in bounds when size_ is a
// multiple of kWordBits (the query mask is 0 there, so the value is exact).
RankBitvector::RankBitvector(Index bits)
    : size_(bits),
      bits_(static_cast<std::size_t>(ceil_div(std::max<Index>(bits, 1), kWordBits)) + 1, 0),
      ranks_(bits_.size() + 1, 0) {}

void RankBitvector::finalize() {
  Index running = 0;
  for (std::size_t w = 0; w < bits_.size(); ++w) {
    ranks_[w] = running;
    running += popcount(bits_[w]);
  }
  ranks_[bits_.size()] = running;
}

WaveletTree::WaveletTree(const Permutation& p) : n_(p.size()) {
  levels_ = 0;
  while ((Index{1} << levels_) < std::max<Index>(n_, 1)) ++levels_;
  if (n_ == 0) return;
  level_bits_.reserve(static_cast<std::size_t>(levels_));
  level_zeros_.resize(static_cast<std::size_t>(levels_), 0);
  // Values in original position order; stably partitioned level by level.
  std::vector<std::int32_t> cur(p.row_to_col());
  std::vector<std::int32_t> next(cur.size());
  for (int level = 0; level < levels_; ++level) {
    const int bit_index = levels_ - 1 - level;  // MSB first
    RankBitvector bv(n_);
    Index zeros = 0;
    for (Index pos = 0; pos < n_; ++pos) {
      const bool bit = (cur[static_cast<std::size_t>(pos)] >> bit_index) & 1;
      if (bit) {
        bv.set(pos);
      } else {
        ++zeros;
      }
    }
    bv.finalize();
    // Stable partition for the next level: zeros first, then ones.
    Index zero_cursor = 0;
    Index one_cursor = zeros;
    for (Index pos = 0; pos < n_; ++pos) {
      const auto value = cur[static_cast<std::size_t>(pos)];
      if ((value >> bit_index) & 1) {
        next[static_cast<std::size_t>(one_cursor++)] = value;
      } else {
        next[static_cast<std::size_t>(zero_cursor++)] = value;
      }
    }
    level_zeros_[static_cast<std::size_t>(level)] = zeros;
    level_bits_.push_back(std::move(bv));
    std::swap(cur, next);
  }
}

Index WaveletTree::count_less(Index lo, Index hi, Index j) const {
  if (j <= 0 || lo >= hi) return 0;
  if (j >= n_) return hi - lo;
  Index count = 0;
  for (int level = 0; level < levels_ && lo < hi; ++level) {
    const int bit_index = levels_ - 1 - level;
    const auto& bv = level_bits_[static_cast<std::size_t>(level)];
    const Index zeros = level_zeros_[static_cast<std::size_t>(level)];
    const Index lo1 = bv.rank1(lo);
    const Index hi1 = bv.rank1(hi);
    if ((j >> bit_index) & 1) {
      // Everything in the 0-subtree is < j; continue into the 1-subtree.
      count += (hi - hi1) - (lo - lo1);
      lo = zeros + lo1;
      hi = zeros + hi1;
    } else {
      // Continue into the 0-subtree.
      lo = lo - lo1;
      hi = hi - hi1;
    }
  }
  return count;
}

Index WaveletTree::count(Index i, Index j) const {
  if (n_ == 0) return 0;
  const Index lo = std::clamp<Index>(i, 0, n_);
  const Index jj = std::clamp<Index>(j, 0, n_);
  return count_less(lo, n_, jj);
}

namespace {

struct FlatLayout {
  int levels = 0;
  std::size_t words_per_level = 0;
  std::size_t supers_per_level = 0;
  std::size_t node_words = 0;
  std::size_t pool_words = 0;
};

FlatLayout flat_layout(Index n) {
  FlatLayout l;
  while ((Index{1} << l.levels) < std::max<Index>(n, 1)) ++l.levels;
  if (n == 0) return l;
  constexpr Index kSuperWords = 8;
  // One pad word beyond n keeps rank1(n) in bounds when n is a multiple of
  // kWordBits (the query mask is 0 there, so the value is exact).
  l.words_per_level = static_cast<std::size_t>(ceil_div(n, kWordBits)) + 1;
  l.supers_per_level = static_cast<std::size_t>(
      ceil_div(static_cast<Index>(l.words_per_level), kSuperWords));
  const std::size_t L = static_cast<std::size_t>(l.levels);
  const std::size_t bit_words = L * l.words_per_level;
  const std::size_t super_words = L * l.supers_per_level;
  // u16 offsets packed four to a word, padded up to a word boundary.
  const std::size_t offset_words = static_cast<std::size_t>(
      ceil_div(static_cast<Index>(L * l.words_per_level), 4));
  // Node directory: one u64 per tree node, sum over levels of 2^l. Positions
  // pack into 32 bits, which bounds supported orders at 2^32 - 1 -- far past
  // any kernel that fits in memory.
  l.node_words = (std::size_t{1} << L) - 1;
  l.pool_words = bit_words + super_words + offset_words + l.node_words;
  return l;
}

constexpr std::uint64_t pack_node(Index end, Index ones) {
  return static_cast<std::uint64_t>(static_cast<std::uint32_t>(end)) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(ones)) << 32);
}

}  // namespace

FlatWaveletTree::FlatWaveletTree(const Permutation& p) : n_(p.size()) {
  const FlatLayout layout = flat_layout(n_);
  levels_ = layout.levels;
  if (n_ == 0) return;
  words_per_level_ = layout.words_per_level;
  supers_per_level_ = layout.supers_per_level;
  pool_ = std::vector<Word>(layout.pool_words, 0);
  level_zeros_.assign(static_cast<std::size_t>(levels_), 0);

  Word* const bits = pool_.data();
  std::uint64_t* const super_ranks =
      pool_.data() + static_cast<std::size_t>(levels_) * words_per_level_;
  auto* const word_offsets = reinterpret_cast<std::uint16_t*>(
      super_ranks + static_cast<std::size_t>(levels_) * supers_per_level_);

  // Values in original position order; stably partitioned level by level
  // (identical traversal to WaveletTree -- only the storage differs).
  std::vector<std::int32_t> cur(p.row_to_col());
  std::vector<std::int32_t> next(cur.size());
  for (int level = 0; level < levels_; ++level) {
    const int bit_index = levels_ - 1 - level;  // MSB first
    Word* const level_bits = bits + static_cast<std::size_t>(level) * words_per_level_;
    Index zeros = 0;
    Index zero_cursor = 0;
    for (Index pos = 0; pos < n_; ++pos) {
      if ((cur[static_cast<std::size_t>(pos)] >> bit_index) & 1) {
        level_bits[static_cast<std::size_t>(pos / kWordBits)] |=
            Word{1} << (pos % kWordBits);
      } else {
        ++zeros;
      }
    }
    // Stable partition for the next level: zeros first, then ones.
    Index one_cursor = zeros;
    for (Index pos = 0; pos < n_; ++pos) {
      const auto value = cur[static_cast<std::size_t>(pos)];
      if ((value >> bit_index) & 1) {
        next[static_cast<std::size_t>(one_cursor++)] = value;
      } else {
        next[static_cast<std::size_t>(zero_cursor++)] = value;
      }
    }
    level_zeros_[static_cast<std::size_t>(level)] = zeros;
    std::swap(cur, next);

    // Rank directory for this level: u64 cumulative count at each 8-word
    // superblock boundary, u16 offset of each word within its superblock.
    std::uint64_t* const level_supers =
        super_ranks + static_cast<std::size_t>(level) * supers_per_level_;
    std::uint16_t* const level_offsets =
        word_offsets + static_cast<std::size_t>(level) * words_per_level_;
    std::uint64_t running = 0;
    std::uint64_t super_base = 0;
    for (std::size_t w = 0; w < words_per_level_; ++w) {
      if (w % static_cast<std::size_t>(kSuperWords) == 0) {
        super_base = running;
        level_supers[w / static_cast<std::size_t>(kSuperWords)] = running;
      }
      level_offsets[w] = static_cast<std::uint16_t>(running - super_base);
      running += static_cast<std::uint64_t>(popcount(level_bits[w]));
    }
  }

  // Node directory: per node (heap order) the end of its interval in the
  // level's concatenated array and rank1 of that end -- the constants a
  // suffix query's upper boundary needs, precomputed once. Children split a
  // node at its one-count: 0-children pack before zeros(level), 1-children
  // after, both in node order.
  if (levels_ == 0) return;  // n == 1: no levels, no nodes
  auto* const nodes = const_cast<std::uint64_t*>(node_dir());
  nodes[0] = pack_node(n_, rank1(0, n_));
  for (int level = 0; level + 1 < levels_; ++level) {
    const std::size_t base = (std::size_t{1} << level) - 1;
    const std::size_t child_base = (std::size_t{1} << (level + 1)) - 1;
    const Index zeros = level_zeros_[static_cast<std::size_t>(level)];
    for (std::size_t p = 0; p < (std::size_t{1} << level); ++p) {
      const std::uint64_t e = nodes[base + p];
      const auto end = static_cast<Index>(e & 0xffffffffu);
      const auto ones = static_cast<Index>(e >> 32);
      const Index end0 = end - ones;   // 0-child: zeros of this level before end
      const Index end1 = zeros + ones;  // 1-child: shifted past all the zeros
      nodes[child_base + 2 * p] = pack_node(end0, rank1(level + 1, end0));
      nodes[child_base + 2 * p + 1] = pack_node(end1, rank1(level + 1, end1));
    }
  }
}

Index FlatWaveletTree::rank1(int level, Index pos) const {
  const auto w = static_cast<std::size_t>(pos / kWordBits);
  const std::size_t lw = static_cast<std::size_t>(level) * words_per_level_;
  return static_cast<Index>(
      supers()[static_cast<std::size_t>(level) * supers_per_level_ +
               w / static_cast<std::size_t>(kSuperWords)] +
      offsets()[lw + w] +
      static_cast<std::uint64_t>(popcount(
          pool_[lw + w] & low_mask(static_cast<int>(pos % kWordBits)))));
}

Index FlatWaveletTree::count_suffix_less(Index lo, Index j) const {
  // Branchless descent: j's bits are data-dependent coin flips, so an
  // if/else here costs a ~50% misprediction per level. Select both subtree
  // mappings with a mask instead; the loop has a fixed trip count. The
  // suffix range's upper boundary follows j's bit path exactly, so its end
  // and rank come from one node-directory load (heap walk 2k+1+bit) -- the
  // lo rank is the only chain: section pointers walk level to level with no
  // per-rank multiplies.
  const Word* bits = pool_.data();
  const std::uint64_t* sup = supers();
  const std::uint16_t* off = offsets();
  const std::uint64_t* nodes = node_dir();
  const Index* zeros_at = level_zeros_.data();
  Index count = 0;
  std::size_t node = 0;
  for (int level = 0; level < levels_; ++level) {
    const auto wl = static_cast<std::size_t>(lo) / kWordBits;
    const Index lo1 = static_cast<Index>(
        sup[wl >> 3] + off[wl] +
        static_cast<std::uint64_t>(
            popcount(bits[wl] & low_mask(static_cast<int>(lo % kWordBits)))));
    const std::uint64_t entry = nodes[node];
    const Index end_zeros = static_cast<Index>(entry & 0xffffffffu) -
                            static_cast<Index>(entry >> 32);
    const Index lo0 = lo - lo1;
    const Index bit = (j >> (levels_ - 1 - level)) & 1;
    const Index mask = -bit;  // all-ones when descending into the 1-subtree
    // The 0-subtree's occupants of [lo, end) are all < j when j's bit is 1.
    count += (end_zeros - lo0) & mask;
    lo = ((zeros_at[level] + lo1) & mask) | (lo0 & ~mask);
    node = 2 * node + 1 + static_cast<std::size_t>(bit);
    bits += words_per_level_;
    sup += supers_per_level_;
    off += words_per_level_;
  }
  return count;
}

Index FlatWaveletTree::count(Index i, Index j) const {
  if (n_ == 0) return 0;
  const Index lo = std::clamp<Index>(i, 0, n_);
  const Index jj = std::clamp<Index>(j, 0, n_);
  if (jj <= 0 || lo >= n_) return 0;
  if (jj >= n_) return n_ - lo;
  return count_suffix_less(lo, jj);
}

void FlatWaveletTree::count_many(const Index* is, const Index* js, Index* out,
                                 std::size_t queries) const {
  if (n_ == 0) {
    std::fill(out, out + queries, Index{0});
    return;
  }
  // Several descents in flight: one descent is bound by the serial per-level
  // chain (word load -> popcount -> next lo), so interleaving a small fixed
  // number of independent queries lets the out-of-order core overlap their
  // loads. The lane count always runs full width -- tail lanes are parked
  // at lo == 0 with j == 0 (every bit 0, contribution masked to nothing) --
  // so the inner loop has a fixed shape the compiler unrolls completely.
  // Six lanes measured fastest on the reference machine: with the node
  // directory halving per-lane loads, four lanes under-fill the load ports
  // and eight spill too much lane state to the stack.
  constexpr std::size_t kLanes = 6;
  const Word* const bits0 = pool_.data();
  const std::uint64_t* const sup0 = supers();
  const std::uint16_t* const off0 = offsets();
  const std::uint64_t* const nodes = node_dir();
  const Index* const zeros_at = level_zeros_.data();
  std::size_t q = 0;
  while (q < queries) {
    const std::size_t lanes = std::min(kLanes, queries - q);
    Index lo[kLanes];
    Index jj[kLanes];
    Index acc[kLanes];
    std::size_t node[kLanes];
    for (std::size_t t = 0; t < kLanes; ++t) {
      lo[t] = 0;
      jj[t] = 0;
      acc[t] = 0;
      node[t] = 0;
    }
    for (std::size_t t = 0; t < lanes; ++t) {
      const Index i = std::clamp<Index>(is[q + t], 0, n_);
      const Index j = std::clamp<Index>(js[q + t], 0, n_);
      // Same trivial cases count() peels off; parked lanes stay parked.
      if (j <= 0 || i >= n_) continue;
      if (j >= n_) {
        acc[t] = n_ - i;
        continue;
      }
      lo[t] = i;
      jj[t] = j;
    }
    const Word* bits = bits0;
    const std::uint64_t* sup = sup0;
    const std::uint16_t* off = off0;
    for (int level = 0; level < levels_; ++level) {
      const Index zeros = zeros_at[level];
      const int shift = levels_ - 1 - level;
      for (std::size_t t = 0; t < kLanes; ++t) {
        const auto wl = static_cast<std::size_t>(lo[t]) / kWordBits;
        const Index lo1 = static_cast<Index>(
            sup[wl >> 3] + off[wl] +
            static_cast<std::uint64_t>(popcount(
                bits[wl] & low_mask(static_cast<int>(lo[t] % kWordBits)))));
        const std::uint64_t entry = nodes[node[t]];
        const Index end_zeros = static_cast<Index>(entry & 0xffffffffu) -
                                static_cast<Index>(entry >> 32);
        const Index lo0 = lo[t] - lo1;
        const Index bit = (jj[t] >> shift) & 1;
        const Index mask = -bit;
        acc[t] += (end_zeros - lo0) & mask;
        lo[t] = ((zeros + lo1) & mask) | (lo0 & ~mask);
        node[t] = 2 * node[t] + 1 + static_cast<std::size_t>(bit);
      }
      bits += words_per_level_;
      sup += supers_per_level_;
      off += words_per_level_;
    }
    for (std::size_t t = 0; t < lanes; ++t) {
      out[q + t] = acc[t];
    }
    q += lanes;
  }
}

std::size_t FlatWaveletTree::resident_bytes() const {
  return pool_.size() * sizeof(Word) + level_zeros_.size() * sizeof(Index);
}

std::size_t FlatWaveletTree::projected_bytes(Index n) {
  const FlatLayout layout = flat_layout(n);
  return layout.pool_words * sizeof(Word) +
         static_cast<std::size_t>(layout.levels) * sizeof(Index);
}

}  // namespace semilocal

#include "dominance/wavelet_tree.hpp"

#include <algorithm>

namespace semilocal {

RankBitvector::RankBitvector(Index bits)
    : size_(bits),
      bits_(static_cast<std::size_t>(ceil_div(std::max<Index>(bits, 1), kWordBits)), 0),
      ranks_(bits_.size() + 1, 0) {}

void RankBitvector::finalize() {
  Index running = 0;
  for (std::size_t w = 0; w < bits_.size(); ++w) {
    ranks_[w] = running;
    running += popcount(bits_[w]);
  }
  ranks_[bits_.size()] = running;
}

WaveletTree::WaveletTree(const Permutation& p) : n_(p.size()) {
  levels_ = 0;
  while ((Index{1} << levels_) < std::max<Index>(n_, 1)) ++levels_;
  if (n_ == 0) return;
  level_bits_.reserve(static_cast<std::size_t>(levels_));
  level_zeros_.resize(static_cast<std::size_t>(levels_), 0);
  // Values in original position order; stably partitioned level by level.
  std::vector<std::int32_t> cur(p.row_to_col());
  std::vector<std::int32_t> next(cur.size());
  for (int level = 0; level < levels_; ++level) {
    const int bit_index = levels_ - 1 - level;  // MSB first
    RankBitvector bv(n_);
    Index zeros = 0;
    for (Index pos = 0; pos < n_; ++pos) {
      const bool bit = (cur[static_cast<std::size_t>(pos)] >> bit_index) & 1;
      if (bit) {
        bv.set(pos);
      } else {
        ++zeros;
      }
    }
    bv.finalize();
    // Stable partition for the next level: zeros first, then ones.
    Index zero_cursor = 0;
    Index one_cursor = zeros;
    for (Index pos = 0; pos < n_; ++pos) {
      const auto value = cur[static_cast<std::size_t>(pos)];
      if ((value >> bit_index) & 1) {
        next[static_cast<std::size_t>(one_cursor++)] = value;
      } else {
        next[static_cast<std::size_t>(zero_cursor++)] = value;
      }
    }
    level_zeros_[static_cast<std::size_t>(level)] = zeros;
    level_bits_.push_back(std::move(bv));
    std::swap(cur, next);
  }
}

Index WaveletTree::count_less(Index lo, Index hi, Index j) const {
  if (j <= 0 || lo >= hi) return 0;
  if (j >= n_) return hi - lo;
  Index count = 0;
  for (int level = 0; level < levels_ && lo < hi; ++level) {
    const int bit_index = levels_ - 1 - level;
    const auto& bv = level_bits_[static_cast<std::size_t>(level)];
    const Index zeros = level_zeros_[static_cast<std::size_t>(level)];
    const Index lo1 = bv.rank1(lo);
    const Index hi1 = bv.rank1(hi);
    if ((j >> bit_index) & 1) {
      // Everything in the 0-subtree is < j; continue into the 1-subtree.
      count += (hi - hi1) - (lo - lo1);
      lo = zeros + lo1;
      hi = zeros + hi1;
    } else {
      // Continue into the 0-subtree.
      lo = lo - lo1;
      hi = hi - hi1;
    }
  }
  return count;
}

Index WaveletTree::count(Index i, Index j) const {
  if (n_ == 0) return 0;
  const Index lo = std::clamp<Index>(i, 0, n_);
  const Index jj = std::clamp<Index>(j, 0, n_);
  return count_less(lo, n_, jj);
}

}  // namespace semilocal

// Merge-sort tree: dominance counting in O(log^2 n) with O(n log n) memory.
//
// This is one of the classical range-counting structures referenced by the
// paper (footnote 1) for querying the implicit semi-local LCS matrix: the
// kernel permutation is stored once, and each H(i, j) element is recovered
// with a logarithmic-cost dominance count instead of a precomputed table.
#pragma once

#include <vector>

#include "braid/permutation.hpp"
#include "util/types.hpp"

namespace semilocal {

/// Static 2D dominance counter over the nonzeros of a permutation.
class MergesortTree {
 public:
  explicit MergesortTree(const Permutation& p);

  /// sigma(i, j) = |{(r, c) nonzero : r >= i, c < j}| in O(log^2 n).
  [[nodiscard]] Index count(Index i, Index j) const;

  [[nodiscard]] Index size() const { return n_; }

  /// Total elements stored across all tree levels (n * ceil(log2 n) + n),
  /// exposed so tests can check the memory bound.
  [[nodiscard]] std::size_t stored_elements() const;

 private:
  Index n_ = 0;
  Index leaves_ = 0;                           // padded to a power of two
  std::vector<std::vector<std::int32_t>> nodes_;  // 1-based heap layout
};

}  // namespace semilocal

// Dense dominance-count oracle: O(n^2) memory, O(1) queries.
//
// Materializes the full distribution matrix of a permutation so that
// sigma(i, j) = |{(r, c) : r >= i, c < j}| is a table lookup. The paper
// notes that the semi-local kernel gives linear-memory storage at the price
// of polylogarithmic element access; this oracle is the opposite corner of
// that tradeoff, used for small kernels and as the ground truth for the
// logarithmic structure in mergesort_tree.hpp.
#pragma once

#include <vector>

#include "braid/permutation.hpp"
#include "util/types.hpp"

namespace semilocal {

/// O(1) dominance counting over a fixed permutation.
class DensePrefixOracle {
 public:
  explicit DensePrefixOracle(const Permutation& p);

  /// sigma(i, j) with i, j in [0, n].
  [[nodiscard]] Index count(Index i, Index j) const {
    return table_[static_cast<std::size_t>(i * (n_ + 1) + j)];
  }

  [[nodiscard]] Index size() const { return n_; }

 private:
  Index n_ = 0;
  std::vector<Index> table_;
};

}  // namespace semilocal

// Semi-local EDIT DISTANCE via the blow-up reduction to LCS.
//
// Interleave each string with a shared separator symbol:
//   blow(x_1 x_2 ... x_k) = x_1 $ x_2 $ ... x_k $.
// Then the unit-cost Levenshtein distance (insert / delete / substitute,
// all cost 1) satisfies
//   ED(a, b) = |a| + |b| - LCS(blow(a), blow(b)).
// Intuition: an LCS symbol pair (x, x) realizes a kept character, while a
// matched separator pair realizes one substitution or gap alignment; the
// blow-up lets the LCS machinery "pay" 1 instead of 2 for substitutions.
//
// Because blow(b)'s windows at even offsets are exactly blow(b[j0, j1)),
// ONE semi-local kernel over the blown strings answers the Levenshtein
// distance of a against every substring of b -- semi-local edit distance,
// the query family behind approximate matching by edit distance (Sellers,
// Landau-Vishkin; see the paper's related-work discussion).
#pragma once

#include "core/api.hpp"
#include "util/types.hpp"

namespace semilocal {

/// Separator injected by the blow-up; reserved (inputs must not use it).
inline constexpr Symbol kBlowupSeparator = -2'000'000;

/// blow(s): s interleaved with the separator (length doubles).
Sequence blow_up(SequenceView s);

/// One-shot Levenshtein distance through the reduction (sanity/reference
/// path; levenshtein() in distance.hpp is the direct DP).
Index levenshtein_via_lcs(SequenceView a, SequenceView b,
                          const SemiLocalOptions& opts = {});

/// Window edit-distance queries: ED(a, b[j0, j1)) for all windows, from one
/// kernel over the blown strings.
class EditDistanceIndex {
 public:
  /// Builds the kernel of (blow(a), blow(b)). Throws if either input uses
  /// the reserved separator symbol.
  EditDistanceIndex(SequenceView a, SequenceView b, const SemiLocalOptions& opts = {});

  [[nodiscard]] Index m() const { return m_; }
  [[nodiscard]] Index n() const { return n_; }

  /// Levenshtein distance of the whole pair.
  [[nodiscard]] Index distance() const { return window(0, n_); }

  /// ED(a, b[j0, j1)).
  [[nodiscard]] Index window(Index j0, Index j1) const;

  /// ED(a[i0, i1), b).
  [[nodiscard]] Index a_window(Index i0, Index i1) const;

  /// ED(a[0,k), b[l,n)).
  [[nodiscard]] Index prefix_suffix(Index k, Index l) const;

  /// Window of width `width` minimizing ED(a, window); {start, distance}.
  [[nodiscard]] std::pair<Index, Index> best_window(Index width, Index stride = 1) const;

  [[nodiscard]] const SemiLocalKernel& kernel() const { return kernel_; }

 private:
  Index m_ = 0;
  Index n_ = 0;
  SemiLocalKernel kernel_;
};

}  // namespace semilocal

// Distance views of (semi-local) LCS.
//
// The LCS score L and the indel edit distance (a.k.a. LCS distance --
// insertions and deletions only, or equivalently unit indels with
// substitution cost 2) are two sides of one coin:
//
//   d_indel(a, b) = |a| + |b| - 2 * LCS(a, b).
//
// Through a semi-local kernel this turns the string-substring quadrant into
// *window distances*: d_indel(a, b[j0, j1)) for every window, with no
// per-window DP. The Levenshtein distance (unit substitutions) is provided
// as a classical baseline; the two are related by
//
//   d_lev <= d_indel <= 2 * d_lev      and      d_lev >= ||a| - |b||.
#pragma once

#include "core/kernel.hpp"
#include "util/types.hpp"

namespace semilocal {

/// Classical Levenshtein distance (unit insert/delete/substitute), rolling
/// rows, O(min(m,n)) memory.
Index levenshtein(SequenceView a, SequenceView b);

/// Indel edit distance via dynamic programming: |a| + |b| - 2 LCS(a, b).
Index indel_distance(SequenceView a, SequenceView b);

/// Window-distance queries over a fixed kernel.
class WindowDistances {
 public:
  /// Takes a kernel of (pattern a, text b) by reference; the kernel must
  /// outlive this object.
  explicit WindowDistances(const SemiLocalKernel& kernel) : kernel_(&kernel) {}

  /// d_indel(a, b[j0, j1)).
  [[nodiscard]] Index window(Index j0, Index j1) const;

  /// d_indel(a[0,k), b[l, n)) -- prefix-suffix distance.
  [[nodiscard]] Index prefix_suffix(Index k, Index l) const;

  /// Best window of width `width` (smallest distance); scans all start
  /// positions with stride `stride`. Returns {start, distance}.
  [[nodiscard]] std::pair<Index, Index> best_window(Index width, Index stride = 1) const;

  /// Best window of ANY width ending at each possible end -- the classic
  /// approximate-matching profile: for each end position j1, the minimum
  /// over j0 of d_indel(a, b[j0, j1)). O(n) queries per end position would
  /// be too slow; this uses the fact that for fixed j1 the distance is
  /// minimized over j0 by scanning a monotone range, and simply evaluates a
  /// capped candidate set around |a|.
  [[nodiscard]] std::vector<Index> end_position_profile(Index slack) const;

 private:
  const SemiLocalKernel* kernel_;
};

}  // namespace semilocal

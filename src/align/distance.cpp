#include "align/distance.hpp"

#include <algorithm>
#include <stdexcept>

#include "lcs/dp.hpp"

namespace semilocal {

Index levenshtein(SequenceView a, SequenceView b) {
  if (a.size() > b.size()) std::swap(a, b);
  const Index m = static_cast<Index>(a.size());
  const Index n = static_cast<Index>(b.size());
  std::vector<Index> prev(static_cast<std::size_t>(m) + 1);
  std::vector<Index> cur(static_cast<std::size_t>(m) + 1);
  for (Index i = 0; i <= m; ++i) prev[static_cast<std::size_t>(i)] = i;
  for (Index j = 1; j <= n; ++j) {
    cur[0] = j;
    const Symbol y = b[static_cast<std::size_t>(j - 1)];
    for (Index i = 1; i <= m; ++i) {
      const Index sub = (a[static_cast<std::size_t>(i - 1)] == y) ? 0 : 1;
      cur[static_cast<std::size_t>(i)] =
          std::min({prev[static_cast<std::size_t>(i)] + 1,
                    cur[static_cast<std::size_t>(i - 1)] + 1,
                    prev[static_cast<std::size_t>(i - 1)] + sub});
    }
    std::swap(prev, cur);
  }
  return prev[static_cast<std::size_t>(m)];
}

Index indel_distance(SequenceView a, SequenceView b) {
  return static_cast<Index>(a.size()) + static_cast<Index>(b.size()) -
         2 * lcs_score_dp(a, b);
}

Index WindowDistances::window(Index j0, Index j1) const {
  return kernel_->m() + (j1 - j0) - 2 * kernel_->string_substring(j0, j1);
}

Index WindowDistances::prefix_suffix(Index k, Index l) const {
  return k + (kernel_->n() - l) - 2 * kernel_->prefix_suffix(k, l);
}

std::pair<Index, Index> WindowDistances::best_window(Index width, Index stride) const {
  if (width < 0 || width > kernel_->n()) {
    throw std::invalid_argument("best_window: width outside [0, n]");
  }
  if (stride <= 0) throw std::invalid_argument("best_window: stride must be positive");
  Index best_start = 0;
  Index best = window(0, width);
  for (Index j0 = stride; j0 + width <= kernel_->n(); j0 += stride) {
    const Index d = window(j0, j0 + width);
    if (d < best) {
      best = d;
      best_start = j0;
    }
  }
  return {best_start, best};
}

std::vector<Index> WindowDistances::end_position_profile(Index slack) const {
  if (slack < 0) throw std::invalid_argument("end_position_profile: negative slack");
  const Index m = kernel_->m();
  const Index n = kernel_->n();
  std::vector<Index> profile(static_cast<std::size_t>(n) + 1, 0);
  for (Index j1 = 0; j1 <= n; ++j1) {
    // Candidate window starts: widths within [m - slack, m + slack],
    // clipped; the optimal width for matching a pattern of length m is
    // within an indel-count of the distance itself.
    const Index lo = std::max<Index>(0, j1 - (m + slack));
    const Index hi = std::max<Index>(0, j1 - std::max<Index>(0, m - slack));
    Index best = window(hi, j1);
    for (Index j0 = lo; j0 <= hi; ++j0) {
      best = std::min(best, window(j0, j1));
    }
    profile[static_cast<std::size_t>(j1)] = best;
  }
  return profile;
}

}  // namespace semilocal

#include "align/edit.hpp"

#include <stdexcept>

namespace semilocal {
namespace {

void reject_separator(SequenceView s, const char* which) {
  for (const Symbol sym : s) {
    if (sym == kBlowupSeparator) {
      throw std::invalid_argument(std::string("EditDistanceIndex: input ") + which +
                                  " uses the reserved separator symbol");
    }
  }
}

}  // namespace

Sequence blow_up(SequenceView s) {
  Sequence out;
  out.reserve(2 * s.size());
  for (const Symbol sym : s) {
    out.push_back(sym);
    out.push_back(kBlowupSeparator);
  }
  return out;
}

Index levenshtein_via_lcs(SequenceView a, SequenceView b, const SemiLocalOptions& opts) {
  reject_separator(a, "a");
  reject_separator(b, "b");
  const auto blown_a = blow_up(a);
  const auto blown_b = blow_up(b);
  const Index lcs = lcs_semilocal(blown_a, blown_b, opts);
  return static_cast<Index>(a.size()) + static_cast<Index>(b.size()) - lcs;
}

EditDistanceIndex::EditDistanceIndex(SequenceView a, SequenceView b,
                                     const SemiLocalOptions& opts)
    : m_(static_cast<Index>(a.size())), n_(static_cast<Index>(b.size())) {
  reject_separator(a, "a");
  reject_separator(b, "b");
  kernel_ = semi_local_kernel(blow_up(a), blow_up(b), opts);
}

Index EditDistanceIndex::window(Index j0, Index j1) const {
  if (j0 < 0 || j1 < j0 || j1 > n_) {
    throw std::out_of_range("EditDistanceIndex::window: need 0 <= j0 <= j1 <= n");
  }
  // blow(b)[2*j0, 2*j1) == blow(b[j0, j1)).
  return m_ + (j1 - j0) - kernel_.string_substring(2 * j0, 2 * j1);
}

Index EditDistanceIndex::a_window(Index i0, Index i1) const {
  if (i0 < 0 || i1 < i0 || i1 > m_) {
    throw std::out_of_range("EditDistanceIndex::a_window: need 0 <= i0 <= i1 <= m");
  }
  return (i1 - i0) + n_ - kernel_.substring_string(2 * i0, 2 * i1);
}

Index EditDistanceIndex::prefix_suffix(Index k, Index l) const {
  if (k < 0 || k > m_ || l < 0 || l > n_) {
    throw std::out_of_range("EditDistanceIndex::prefix_suffix: arguments out of range");
  }
  return k + (n_ - l) - kernel_.prefix_suffix(2 * k, 2 * l);
}

std::pair<Index, Index> EditDistanceIndex::best_window(Index width, Index stride) const {
  if (width < 0 || width > n_) {
    throw std::invalid_argument("EditDistanceIndex::best_window: width outside [0, n]");
  }
  if (stride <= 0) throw std::invalid_argument("EditDistanceIndex::best_window: bad stride");
  Index best_start = 0;
  Index best = window(0, width);
  for (Index j0 = stride; j0 + width <= n_; j0 += stride) {
    const Index d = window(j0, j0 + width);
    if (d < best) {
      best = d;
      best_start = j0;
    }
  }
  return {best_start, best};
}

}  // namespace semilocal

// Minimal command-line argument parsing for the tools and examples.
//
// Supports subcommand-style interfaces: positional arguments, `--key value`
// options and `--flag` switches. Unknown options are errors (fail fast
// rather than silently ignoring typos).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace semilocal {

/// Parsed command line.
class CliArgs {
 public:
  /// Parses argv[start..argc). `known_flags` lists valueless switches;
  /// every other `--name` consumes the following token as its value.
  /// Throws std::invalid_argument on malformed input.
  static CliArgs parse(int argc, const char* const* argv, int start,
                       const std::set<std::string>& known_flags = {});

  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

  [[nodiscard]] bool has_flag(const std::string& name) const {
    return flags_.count(name) > 0;
  }

  [[nodiscard]] std::optional<std::string> option(const std::string& name) const;

  /// Option with a default.
  [[nodiscard]] std::string option_or(const std::string& name, std::string fallback) const;

  /// Integer option with validation.
  [[nodiscard]] Index int_option_or(const std::string& name, Index fallback) const;

  /// Floating-point option with validation.
  [[nodiscard]] double double_option_or(const std::string& name, double fallback) const;

 private:
  std::vector<std::string> positional_;
  std::set<std::string> flags_;
  std::map<std::string, std::string> options_;
};

}  // namespace semilocal

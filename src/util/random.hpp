// Workload generation: the synthetic inputs of the ICPP'21 evaluation.
//
// The paper's synthetic strings are "randomly generated integer sequences of
// length up to 1e6, with characters sampled from a normal distribution with
// zero mean and standard deviation sigma, and then rounded towards zero".
// Varying sigma emulates high / medium / low matching frequency.
#pragma once

#include <cstdint>
#include <random>

#include "util/types.hpp"

namespace semilocal {

/// Deterministic 64-bit RNG wrapper. Every generator in the library takes an
/// explicit seed so experiments are reproducible run-to-run.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  std::mt19937_64& engine() { return engine_; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  bool bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

 private:
  std::mt19937_64 engine_;
};

/// Paper workload: N(0, sigma) rounded towards zero. sigma = 1 gives ~68%
/// zeros (high match frequency); large sigma approaches a large alphabet
/// (low match frequency).
Sequence rounded_normal_sequence(Index length, double sigma, std::uint64_t seed);

/// Uniform alphabet workload: symbols uniform in [0, alphabet).
Sequence uniform_sequence(Index length, Symbol alphabet, std::uint64_t seed);

/// Binary workload for the bit-parallel algorithms: symbols in {0, 1} with
/// P(1) = density.
Sequence binary_sequence(Index length, std::uint64_t seed, double density = 0.5);

/// Uniformly random permutation of [0, n) (Fisher–Yates), used as random
/// braid-multiplication inputs exactly as in Section 5.1 of the paper.
std::vector<std::int32_t> random_permutation_vector(Index n, std::uint64_t seed);

/// Mutates `base` into a similar string: per-position substitution with
/// probability `sub_rate`, plus `indels` random single-symbol insertions or
/// deletions. Used to build high-similarity pairs resembling genome pairs.
Sequence mutate_sequence(SequenceView base, double sub_rate, Index indels,
                         Symbol alphabet, std::uint64_t seed);

}  // namespace semilocal

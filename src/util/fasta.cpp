#include "util/fasta.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/random.hpp"

namespace semilocal {
namespace {

constexpr char kBases[4] = {'A', 'C', 'G', 'T'};

char draw_base(Rng& rng, double gc) {
  // GC split evenly between G and C; AT split evenly between A and T.
  const double u = rng.uniform01();
  if (u < gc / 2) return 'G';
  if (u < gc) return 'C';
  if (u < gc + (1.0 - gc) / 2) return 'A';
  return 'T';
}

}  // namespace

std::vector<FastaRecord> read_fasta(std::istream& in) {
  std::vector<FastaRecord> records;
  std::string line;
  bool seen_header = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '>') {
      seen_header = true;
      FastaRecord rec;
      const auto space = line.find_first_of(" \t");
      rec.id = line.substr(1, space == std::string::npos ? std::string::npos : space - 1);
      if (space != std::string::npos) rec.description = line.substr(space + 1);
      records.push_back(std::move(rec));
    } else {
      if (!seen_header) throw std::runtime_error("read_fasta: residue data before first '>' header");
      auto& residues = records.back().residues;
      for (const char c : line) {
        if (std::isspace(static_cast<unsigned char>(c))) continue;
        residues.push_back(static_cast<Symbol>(static_cast<unsigned char>(c)));
      }
    }
  }
  return records;
}

std::vector<FastaRecord> read_fasta_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_fasta_file: cannot open " + path);
  return read_fasta(in);
}

void write_fasta(std::ostream& out, const std::vector<FastaRecord>& records, int width) {
  if (width <= 0) throw std::invalid_argument("write_fasta: width must be positive");
  for (const auto& rec : records) {
    out << '>' << rec.id;
    if (!rec.description.empty()) out << ' ' << rec.description;
    out << '\n';
    const std::string text = to_string(rec.residues);
    for (std::size_t pos = 0; pos < text.size(); pos += static_cast<std::size_t>(width)) {
      out << text.substr(pos, static_cast<std::size_t>(width)) << '\n';
    }
  }
}

FastaRecord generate_genome(const GenomeModel& model, std::uint64_t seed,
                            const std::string& id) {
  if (model.length < 0) throw std::invalid_argument("generate_genome: negative length");
  if (model.segment_length <= 0) throw std::invalid_argument("generate_genome: segment_length must be positive");
  Rng rng(seed);
  FastaRecord rec;
  rec.id = id;
  rec.description = "synthetic genome (GC=" + std::to_string(model.gc_content) + ")";
  rec.residues.reserve(static_cast<std::size_t>(model.length));
  Index emitted = 0;
  while (emitted < model.length) {
    const Index seg = std::min(model.segment_length, model.length - emitted);
    double gc = model.gc_content +
                model.segment_gc_jitter * (2.0 * rng.uniform01() - 1.0);
    gc = std::clamp(gc, 0.05, 0.95);
    for (Index i = 0; i < seg; ++i) {
      rec.residues.push_back(static_cast<Symbol>(draw_base(rng, gc)));
    }
    emitted += seg;
  }
  return rec;
}

FastaRecord evolve_genome(const FastaRecord& ancestor, const MutationModel& m,
                          std::uint64_t seed, const std::string& id) {
  Rng rng(seed);
  FastaRecord rec;
  rec.id = id;
  rec.description = "descendant of " + ancestor.id;
  const auto& src = ancestor.residues;
  rec.residues.reserve(src.size() + src.size() / 10);
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (m.duplication_rate > 0 && rng.bernoulli(m.duplication_rate)) {
      const Index len = std::min<Index>(rng.uniform(1, std::max<Index>(1, m.max_duplication_length)),
                                        static_cast<Index>(src.size() - i));
      for (Index k = 0; k < len; ++k) rec.residues.push_back(src[i + static_cast<std::size_t>(k)]);
      // fall through: the original copy is still emitted below
    }
    if (m.indel_rate > 0 && rng.bernoulli(m.indel_rate)) {
      const Index len = rng.uniform(1, std::max<Index>(1, m.max_indel_length));
      if (rng.bernoulli(0.5)) {
        // insertion of random bases
        for (Index k = 0; k < len; ++k) {
          rec.residues.push_back(static_cast<Symbol>(kBases[rng.uniform(0, 3)]));
        }
      } else {
        // deletion: skip up to len source bases (including the current one)
        i += static_cast<std::size_t>(len - 1);
        continue;
      }
    }
    Symbol base = src[i];
    if (m.substitution_rate > 0 && rng.bernoulli(m.substitution_rate)) {
      Symbol repl = static_cast<Symbol>(kBases[rng.uniform(0, 3)]);
      if (repl == base) repl = static_cast<Symbol>(kBases[(rng.uniform(0, 3) + 1) % 4]);
      base = repl;
    }
    rec.residues.push_back(base);
  }
  return rec;
}

std::pair<FastaRecord, FastaRecord> generate_genome_pair(
    const GenomeModel& model, const MutationModel& mutations, std::uint64_t seed) {
  const FastaRecord ancestor = generate_genome(model, seed);
  FastaRecord a = evolve_genome(ancestor, mutations, seed + 1, "descendant_a");
  FastaRecord b = evolve_genome(ancestor, mutations, seed + 2, "descendant_b");
  return {std::move(a), std::move(b)};
}

Sequence pack_dna(SequenceView residues) {
  Sequence out;
  out.reserve(residues.size());
  for (const Symbol s : residues) {
    switch (std::toupper(static_cast<int>(s))) {
      case 'A': out.push_back(0); break;
      case 'C': out.push_back(1); break;
      case 'G': out.push_back(2); break;
      case 'T': out.push_back(3); break;
      default: out.push_back(4); break;
    }
  }
  return out;
}

}  // namespace semilocal

// Console-table and CSV reporting for the benchmark harness.
//
// Every figure-reproduction binary prints one or more labelled tables (the
// series the paper plots) and mirrors them to CSV files so results can be
// re-plotted.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace semilocal {

/// A simple column-aligned table. Cells are strings; numeric helpers format
/// with sensible precision.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent add_* calls fill it left to right.
  Table& row();
  Table& cell(std::string value);
  Table& cell(double value, int precision = 4);
  Table& cell(long long value);
  Table& cell(int value) { return cell(static_cast<long long>(value)); }

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return header_.size(); }

  /// Renders as an aligned ASCII table.
  void print(std::ostream& out, const std::string& title = "") const;

  /// Writes RFC-4180-ish CSV (header + rows).
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Reads a positive scale factor from the SEMILOCAL_BENCH_SCALE environment
/// variable (default 1.0). Benchmarks multiply their default problem sizes
/// by this to move between quick-check and paper-scale runs.
double bench_scale();

}  // namespace semilocal

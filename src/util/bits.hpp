// Bit-manipulation helpers shared by the bit-parallel LCS algorithms.
#pragma once

#include <bit>
#include <cstdint>
#include <span>

namespace semilocal {

/// Machine word used by all bit-parallel kernels.
using Word = std::uint64_t;

inline constexpr int kWordBits = 64;

/// Number of set bits in `w` ("Kernighan count" in the paper; we use the
/// hardware popcount via std::popcount).
[[nodiscard]] inline int popcount(Word w) noexcept { return std::popcount(w); }

/// Total number of set bits across a span of words.
[[nodiscard]] inline std::int64_t popcount(std::span<const Word> words) noexcept {
  std::int64_t total = 0;
  for (const Word w : words) total += std::popcount(w);
  return total;
}

/// Ceiling division for non-negative integers.
[[nodiscard]] constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) noexcept {
  return (a + b - 1) / b;
}

/// Rounds `a` up to the next multiple of `b` (b > 0).
[[nodiscard]] constexpr std::int64_t round_up(std::int64_t a, std::int64_t b) noexcept {
  return ceil_div(a, b) * b;
}

/// Word with the low `n` bits set (0 <= n <= 64).
[[nodiscard]] constexpr Word low_mask(int n) noexcept {
  return n >= kWordBits ? ~Word{0} : ((Word{1} << n) - 1);
}

/// Branch-free conditional swap used by the branchless combing inner loop:
/// returns a if p == 0, b if p == 1 (the paper's `(a & (p-1)) | ((-p) & b)`).
template <typename UInt>
[[nodiscard]] constexpr UInt select_if(UInt a, UInt b, UInt p) noexcept {
  return static_cast<UInt>((a & (p - UInt{1})) | ((UInt{0} - p) & b));
}

}  // namespace semilocal

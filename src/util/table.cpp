#include "util/table.hpp"

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace semilocal {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: header must be non-empty");
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string value) {
  if (rows_.empty()) row();
  if (rows_.back().size() >= header_.size()) {
    throw std::logic_error("Table: row has more cells than header columns");
  }
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

Table& Table::cell(long long value) { return cell(std::to_string(value)); }

void Table::print(std::ostream& out, const std::string& title) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  if (!title.empty()) out << "== " << title << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2) << v;
    }
    out << '\n';
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << std::string(widths[c], '-') << "  ";
  }
  out << '\n';
  for (const auto& r : rows_) emit_row(r);
  out.flush();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Table::write_csv: cannot open " + path);
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (const char ch : s) {
      if (ch == '"') q += "\"\"";
      else q += ch;
    }
    q += '"';
    return q;
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << ',';
      out << quote(cells[c]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

double bench_scale() {
  const char* env = std::getenv("SEMILOCAL_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

}  // namespace semilocal

#include "util/random.hpp"

#include <cmath>
#include <stdexcept>

namespace semilocal {

Sequence rounded_normal_sequence(Index length, double sigma, std::uint64_t seed) {
  if (length < 0) throw std::invalid_argument("rounded_normal_sequence: negative length");
  Rng rng(seed);
  std::normal_distribution<double> dist(0.0, sigma);
  Sequence out(static_cast<std::size_t>(length));
  for (auto& s : out) {
    // "rounded towards zero" == truncation.
    s = static_cast<Symbol>(std::trunc(dist(rng.engine())));
  }
  return out;
}

Sequence uniform_sequence(Index length, Symbol alphabet, std::uint64_t seed) {
  if (length < 0) throw std::invalid_argument("uniform_sequence: negative length");
  if (alphabet <= 0) throw std::invalid_argument("uniform_sequence: alphabet must be positive");
  Rng rng(seed);
  Sequence out(static_cast<std::size_t>(length));
  for (auto& s : out) s = static_cast<Symbol>(rng.uniform(0, alphabet - 1));
  return out;
}

Sequence binary_sequence(Index length, std::uint64_t seed, double density) {
  if (length < 0) throw std::invalid_argument("binary_sequence: negative length");
  Rng rng(seed);
  Sequence out(static_cast<std::size_t>(length));
  for (auto& s : out) s = rng.bernoulli(density) ? 1 : 0;
  return out;
}

std::vector<std::int32_t> random_permutation_vector(Index n, std::uint64_t seed) {
  if (n < 0) throw std::invalid_argument("random_permutation_vector: negative size");
  std::vector<std::int32_t> perm(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(i);
  Rng rng(seed);
  for (Index i = n - 1; i > 0; --i) {
    const Index j = rng.uniform(0, i);
    std::swap(perm[static_cast<std::size_t>(i)], perm[static_cast<std::size_t>(j)]);
  }
  return perm;
}

Sequence mutate_sequence(SequenceView base, double sub_rate, Index indels,
                         Symbol alphabet, std::uint64_t seed) {
  if (alphabet <= 1) throw std::invalid_argument("mutate_sequence: alphabet must exceed 1");
  Rng rng(seed);
  Sequence out(base.begin(), base.end());
  for (auto& s : out) {
    if (rng.bernoulli(sub_rate)) {
      Symbol repl = static_cast<Symbol>(rng.uniform(0, alphabet - 1));
      if (repl == s) repl = static_cast<Symbol>((repl + 1) % alphabet);
      s = repl;
    }
  }
  for (Index k = 0; k < indels && !out.empty(); ++k) {
    const auto pos = static_cast<std::size_t>(rng.uniform(0, static_cast<Index>(out.size()) - 1));
    if (rng.bernoulli(0.5)) {
      out.erase(out.begin() + static_cast<std::ptrdiff_t>(pos));
    } else {
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(pos),
                 static_cast<Symbol>(rng.uniform(0, alphabet - 1)));
    }
  }
  return out;
}

}  // namespace semilocal

// Common scalar types and string conventions for the semilocal library.
//
// Strings are sequences of integer symbols (`Symbol`).  The library never
// interprets symbol values beyond equality comparison, so any alphabet --
// bytes, DNA letters, rounded-normal integers as in the ICPP'21 paper --
// maps onto `Sequence` losslessly.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace semilocal {

/// Alphabet symbol. 32 bits so the paper's rounded-normal integer workloads
/// fit directly; equality is the only operation algorithms rely on.
using Symbol = std::int32_t;

/// Owning string of symbols.
using Sequence = std::vector<Symbol>;

/// Non-owning view of a string of symbols. All algorithm entry points take
/// views so callers can slice without copying.
using SequenceView = std::span<const Symbol>;

/// Index type for string positions and permutation-matrix coordinates.
/// Signed (CppCoreGuidelines ES.100-adjacent pragmatism: subtraction-heavy
/// index arithmetic) and 64-bit so paper-scale inputs (1e7 braids) are safe.
using Index = std::int64_t;

/// Converts a byte string to a symbol sequence (one symbol per char).
inline Sequence to_sequence(std::string_view text) {
  Sequence out;
  out.reserve(text.size());
  for (const char c : text) {
    out.push_back(static_cast<Symbol>(static_cast<unsigned char>(c)));
  }
  return out;
}

/// Converts a symbol sequence holding character codes back to a byte string.
/// Symbols outside [0,255] are rendered as '?'.
inline std::string to_string(SequenceView seq) {
  std::string out;
  out.reserve(seq.size());
  for (const Symbol s : seq) {
    out.push_back((s >= 0 && s < 256) ? static_cast<char>(s) : '?');
  }
  return out;
}

}  // namespace semilocal

#include "util/parallel.hpp"

#include <omp.h>

#include <stdexcept>

namespace semilocal {

int max_threads() { return omp_get_max_threads(); }

int hardware_threads() { return omp_get_num_procs(); }

void set_threads(int n) {
  if (n <= 0) throw std::invalid_argument("set_threads: thread count must be positive");
  omp_set_num_threads(n);
}

ThreadScope::ThreadScope(int n) : saved_(omp_get_max_threads()) { set_threads(n); }

ThreadScope::~ThreadScope() { omp_set_num_threads(saved_); }

}  // namespace semilocal

// FASTA I/O and a synthetic virus-genome substrate.
//
// The paper evaluates on NCBI virus genomes (project PRJNA485481, lengths up
// to 134 000). That dataset is not available offline, so this module supplies
// the substitution documented in DESIGN.md: a seeded generator that produces
// genome-like DNA records (4-letter alphabet, biased base composition,
// GC-skewed segments) and evolves related genomes from a common ancestor via
// a mutation model (substitutions, indels, segmental duplications). Pairs
// generated this way exercise the exact property that distinguishes the
// paper's "real-life" columns from the synthetic rounded-normal columns:
// small alphabet, high pairwise similarity, non-uniform composition.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace semilocal {

/// One FASTA record: a header line (without '>') and the residue string.
struct FastaRecord {
  std::string id;
  std::string description;
  Sequence residues;  // symbols are character codes 'A','C','G','T',...

  [[nodiscard]] Index length() const { return static_cast<Index>(residues.size()); }
};

/// Parses all records from a FASTA stream. Throws std::runtime_error on
/// malformed input (data before the first header).
std::vector<FastaRecord> read_fasta(std::istream& in);

/// Parses a FASTA file from disk.
std::vector<FastaRecord> read_fasta_file(const std::string& path);

/// Writes records in FASTA format, wrapping residue lines at `width`.
void write_fasta(std::ostream& out, const std::vector<FastaRecord>& records,
                 int width = 70);

/// Parameters of the synthetic genome generator.
struct GenomeModel {
  Index length = 30000;           ///< ancestor genome length (bp)
  double gc_content = 0.41;       ///< genome-wide GC fraction
  Index segment_length = 2000;    ///< length of composition-skewed segments
  double segment_gc_jitter = 0.1; ///< per-segment GC deviation amplitude
};

/// Mutation model applied per generated descendant.
struct MutationModel {
  double substitution_rate = 0.02;   ///< per-base substitution probability
  double indel_rate = 0.002;         ///< per-base indel probability
  Index max_indel_length = 12;       ///< indel lengths uniform in [1, max]
  double duplication_rate = 0.0002;  ///< per-base segmental duplication prob.
  Index max_duplication_length = 300;
};

/// Generates an ancestor genome under `model` with the given seed.
FastaRecord generate_genome(const GenomeModel& model, std::uint64_t seed,
                            const std::string& id = "synthetic_ancestor");

/// Derives a descendant of `ancestor` under `mutations`.
FastaRecord evolve_genome(const FastaRecord& ancestor, const MutationModel& mutations,
                          std::uint64_t seed, const std::string& id = "descendant");

/// Convenience: a pair of related genomes (two descendants of one ancestor),
/// the shape of input used by the paper's real-life experiments.
std::pair<FastaRecord, FastaRecord> generate_genome_pair(
    const GenomeModel& model, const MutationModel& mutations, std::uint64_t seed);

/// Maps DNA residues (A,C,G,T, case-insensitive; anything else -> N) to a
/// dense alphabet {0..4} suitable for the LCS algorithms.
Sequence pack_dna(SequenceView residues);

}  // namespace semilocal

// Thin OpenMP helpers: scoped thread-count control and capability queries.
//
// The library's parallel algorithms use OpenMP directly (parallel for over
// anti-diagonals, task recursion for the steady ant); this header centralizes
// the few runtime knobs the benchmark harness needs.
#pragma once

namespace semilocal {

/// Number of threads OpenMP will use for the next parallel region.
int max_threads();

/// Number of hardware threads visible to the process.
int hardware_threads();

/// Sets the global OpenMP thread count (like omp_set_num_threads).
void set_threads(int n);

/// RAII guard: sets the OpenMP thread count for a scope, restores on exit.
/// Used by the thread-sweep benchmarks (Figures 7-9).
class ThreadScope {
 public:
  explicit ThreadScope(int n);
  ~ThreadScope();
  ThreadScope(const ThreadScope&) = delete;
  ThreadScope& operator=(const ThreadScope&) = delete;

 private:
  int saved_;
};

}  // namespace semilocal

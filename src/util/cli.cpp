#include "util/cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace semilocal {

CliArgs CliArgs::parse(int argc, const char* const* argv, int start,
                       const std::set<std::string>& known_flags) {
  CliArgs args;
  for (int i = start; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string name = token.substr(2);
      if (name.empty()) throw std::invalid_argument("cli: bare '--' is not a valid option");
      if (known_flags.count(name) > 0) {
        args.flags_.insert(name);
      } else {
        if (i + 1 >= argc) {
          throw std::invalid_argument("cli: option --" + name + " needs a value");
        }
        args.options_[name] = argv[++i];
      }
    } else {
      args.positional_.push_back(token);
    }
  }
  return args;
}

std::optional<std::string> CliArgs::option(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

std::string CliArgs::option_or(const std::string& name, std::string fallback) const {
  const auto v = option(name);
  return v ? *v : std::move(fallback);
}

Index CliArgs::int_option_or(const std::string& name, Index fallback) const {
  const auto v = option(name);
  if (!v) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0') {
    throw std::invalid_argument("cli: option --" + name + " expects an integer, got '" + *v + "'");
  }
  return static_cast<Index>(parsed);
}

double CliArgs::double_option_or(const std::string& name, double fallback) const {
  const auto v = option(name);
  if (!v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  if (end == v->c_str() || *end != '\0') {
    throw std::invalid_argument("cli: option --" + name + " expects a number, got '" + *v + "'");
  }
  return parsed;
}

}  // namespace semilocal

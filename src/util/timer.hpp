// Wall-clock timing and summary statistics for the benchmark harness.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <vector>

namespace semilocal {

/// Monotonic stopwatch. Started on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Summary statistics over repeated timing samples.
struct TimingStats {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;
  int samples = 0;

  static TimingStats from(std::vector<double> xs) {
    TimingStats s;
    s.samples = static_cast<int>(xs.size());
    if (xs.empty()) return s;
    std::sort(xs.begin(), xs.end());
    s.min = xs.front();
    s.max = xs.back();
    const std::size_t n = xs.size();
    s.median = (n % 2 == 1) ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
    double sum = 0.0;
    for (const double x : xs) sum += x;
    s.mean = sum / static_cast<double>(n);
    double var = 0.0;
    for (const double x : xs) var += (x - s.mean) * (x - s.mean);
    s.stddev = n > 1 ? std::sqrt(var / static_cast<double>(n - 1)) : 0.0;
    return s;
  }
};

/// Runs `fn` `repeats` times and returns per-run wall-clock seconds.
template <typename Fn>
std::vector<double> time_runs(int repeats, Fn&& fn) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    Timer t;
    fn();
    out.push_back(t.seconds());
  }
  return out;
}

}  // namespace semilocal

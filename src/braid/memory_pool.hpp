// Preallocated memory for the steady-ant recursion (paper Section 4.2.1).
//
// The "memory" optimization of the paper replaces per-level heap allocation
// with (a) two ping-pong buffers for the permutations themselves (the roles
// of "used_block" / "free_block" alternate per recursion level) and (b) a
// stack-disciplined arena for the row/column index mappings and the
// ant-passage scratch. In the parallel algorithm sibling tasks carve
// disjoint sub-arenas so no synchronization is needed.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "util/types.hpp"

namespace semilocal {

/// Bump allocator over `int32_t` entries with stack (mark/release)
/// discipline. Non-owning view; see ArenaStorage for the owner.
class Arena {
 public:
  Arena() = default;
  Arena(std::int32_t* base, std::size_t capacity)
      : base_(base), capacity_(capacity) {}

  /// Allocates `n` entries; throws std::bad_alloc-like logic_error when the
  /// arena was sized too small (a bug in the requirement bound, not an OOM).
  std::span<std::int32_t> alloc(std::size_t n) {
    if (cursor_ + n > capacity_) {
      throw std::logic_error("Arena::alloc: preallocated block exhausted");
    }
    std::span<std::int32_t> s{base_ + cursor_, n};
    cursor_ += n;
    return s;
  }

  /// Current stack mark, to be passed to release().
  [[nodiscard]] std::size_t mark() const { return cursor_; }

  /// Pops everything allocated since `mark`.
  void release(std::size_t mark) {
    if (mark > cursor_) throw std::logic_error("Arena::release: mark above cursor");
    cursor_ = mark;
  }

  /// Splits off an independent arena of `n` entries for a sibling task.
  Arena carve(std::size_t n) {
    if (cursor_ + n > capacity_) {
      throw std::logic_error("Arena::carve: preallocated block exhausted");
    }
    Arena child(base_ + cursor_, n);
    cursor_ += n;
    return child;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t used() const { return cursor_; }

 private:
  std::int32_t* base_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t cursor_ = 0;
};

/// Owning storage for an Arena.
class ArenaStorage {
 public:
  explicit ArenaStorage(std::size_t capacity) : buffer_(capacity) {}

  Arena arena() { return Arena(buffer_.data(), buffer_.size()); }

 private:
  std::vector<std::int32_t> buffer_;
};

/// Arena entries needed by one steady-ant invocation of order `n` whose top
/// `parallel_depth` recursion levels may run as concurrent sibling tasks.
///
/// Per call of order n: 2n mapping entries persist across the recursive
/// calls, a transient n-entry rank buffer lives only inside the split, and
/// 2n entries of overlay scratch are taken after the children release their
/// memory. Sequential children reuse the same arena region one after the
/// other; parallel children need disjoint carves.
std::size_t steady_ant_arena_requirement(Index n, int parallel_depth);

}  // namespace semilocal

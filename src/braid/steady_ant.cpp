#include "braid/steady_ant.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

#include "braid/memory_pool.hpp"
#include "braid/precalc.hpp"

namespace semilocal {
namespace {

using I32 = std::int32_t;
using Span = std::span<I32>;
using CSpan = std::span<const I32>;

// Views into the split pieces of one divide step. `p_*` / `q_*` hold the
// compressed row->col arrays of the four sub-permutations; the maps record
// original row indices (for P's halves) and original column indices (for
// Q's halves) of the compressed coordinates.
struct SplitViews {
  Span p_lo, q_lo, p_hi, q_hi;
  Span rowmap_lo, rowmap_hi;
  Span colmap_lo, colmap_hi;
};

// Splits P by the column threshold h and Q by the row threshold h.
// `rank_tmp` is transient scratch of size n.
void split_inputs(CSpan p, CSpan q, Index h, SplitViews& s, Span rank_tmp) {
  const Index n = static_cast<Index>(p.size());
  Index lo = 0;
  Index hi = 0;
  for (Index r = 0; r < n; ++r) {
    const I32 c = p[static_cast<std::size_t>(r)];
    if (c < h) {
      s.rowmap_lo[static_cast<std::size_t>(lo)] = static_cast<I32>(r);
      s.p_lo[static_cast<std::size_t>(lo)] = c;
      ++lo;
    } else {
      s.rowmap_hi[static_cast<std::size_t>(hi)] = static_cast<I32>(r);
      s.p_hi[static_cast<std::size_t>(hi)] = static_cast<I32>(c - h);
      ++hi;
    }
  }
  assert(lo == h && hi == n - h);
  // Mark the columns hit by the first h rows of Q, then assign compressed
  // ranks to both classes in one ordered pass.
  for (Index c = 0; c < n; ++c) rank_tmp[static_cast<std::size_t>(c)] = 0;
  for (Index r = 0; r < h; ++r) rank_tmp[static_cast<std::size_t>(q[static_cast<std::size_t>(r)])] = 1;
  Index lo_rank = 0;
  Index hi_rank = 0;
  for (Index c = 0; c < n; ++c) {
    if (rank_tmp[static_cast<std::size_t>(c)] != 0) {
      s.colmap_lo[static_cast<std::size_t>(lo_rank)] = static_cast<I32>(c);
      rank_tmp[static_cast<std::size_t>(c)] = static_cast<I32>(lo_rank++);
    } else {
      s.colmap_hi[static_cast<std::size_t>(hi_rank)] = static_cast<I32>(c);
      rank_tmp[static_cast<std::size_t>(c)] = static_cast<I32>(hi_rank++);
    }
  }
  for (Index r = 0; r < h; ++r) {
    s.q_lo[static_cast<std::size_t>(r)] = rank_tmp[static_cast<std::size_t>(q[static_cast<std::size_t>(r)])];
  }
  for (Index r = h; r < n; ++r) {
    s.q_hi[static_cast<std::size_t>(r - h)] = rank_tmp[static_cast<std::size_t>(q[static_cast<std::size_t>(r)])];
  }
}

// Expands the recursive results back to original coordinates and writes the
// overlay tag arrays consumed by the ant passage:
//   row_tag[r] = (col << 1) | is_lo,   col_tag[c] = (row << 1) | is_lo.
void expand_tags(CSpan r_lo, CSpan r_hi, const SplitViews& s, Span row_tag, Span col_tag) {
  for (std::size_t i = 0; i < r_lo.size(); ++i) {
    const I32 r = s.rowmap_lo[i];
    const I32 c = s.colmap_lo[static_cast<std::size_t>(r_lo[i])];
    row_tag[static_cast<std::size_t>(r)] = static_cast<I32>((c << 1) | 1);
    col_tag[static_cast<std::size_t>(c)] = static_cast<I32>((r << 1) | 1);
  }
  for (std::size_t i = 0; i < r_hi.size(); ++i) {
    const I32 r = s.rowmap_hi[i];
    const I32 c = s.colmap_hi[static_cast<std::size_t>(r_hi[i])];
    row_tag[static_cast<std::size_t>(r)] = static_cast<I32>(c << 1);
    col_tag[static_cast<std::size_t>(c)] = static_cast<I32>(r << 1);
  }
}

// The ant passage (conquer step). Walks the corner grid from (i=n, k=0) to
// (i=0, k=n) keeping the balance d(i,k) at zero: a free up-move crosses a
// row whose overlay nonzero is good (kept verbatim); when both the up- and
// the right-move would unbalance the walk, a fresh nonzero is emitted at the
// inner corner and the ant steps diagonally. Every row receives exactly one
// output nonzero, so `out` ends up a complete row->col permutation.
void ant_passage(Index n, CSpan row_tag, CSpan col_tag, Span out) {
  Index i = n;
  Index k = 0;
  while (i > 0 || k < n) {
    if (i > 0) {
      const I32 t = row_tag[static_cast<std::size_t>(i - 1)];
      const I32 col = static_cast<I32>(t >> 1);
      const bool is_lo = (t & 1) != 0;
      const bool blocked = is_lo ? (col >= k) : (col < k);
      if (!blocked) {
        out[static_cast<std::size_t>(i - 1)] = col;  // good nonzero
        --i;
        continue;
      }
    }
    if (k < n) {
      const I32 t = col_tag[static_cast<std::size_t>(k)];
      const I32 row = static_cast<I32>(t >> 1);
      const bool is_lo = (t & 1) != 0;
      const bool grows = is_lo ? (row >= i) : (row < i);
      if (!grows) {
        ++k;
        continue;
      }
    }
    assert(i > 0 && k < n);
    out[static_cast<std::size_t>(i - 1)] = static_cast<I32>(k);  // fresh nonzero
    --i;
    ++k;
  }
}

// ---------------------------------------------------------------------------
// base / precalc variants: plain recursion with per-level heap allocation.
// ---------------------------------------------------------------------------

void multiply_alloc(CSpan p, CSpan q, Span out, const SmallProductTable* table,
                    Index cutoff) {
  const Index n = static_cast<Index>(p.size());
  if (table != nullptr && n <= cutoff) {
    table->multiply(p, q, out);
    return;
  }
  if (n == 1) {
    out[0] = 0;
    return;
  }
  const Index h = n / 2;
  std::vector<I32> p_lo(static_cast<std::size_t>(h)), q_lo(static_cast<std::size_t>(h));
  std::vector<I32> p_hi(static_cast<std::size_t>(n - h)), q_hi(static_cast<std::size_t>(n - h));
  std::vector<I32> rowmap_lo(static_cast<std::size_t>(h)), rowmap_hi(static_cast<std::size_t>(n - h));
  std::vector<I32> colmap_lo(static_cast<std::size_t>(h)), colmap_hi(static_cast<std::size_t>(n - h));
  SplitViews s{p_lo, q_lo, p_hi, q_hi, rowmap_lo, rowmap_hi, colmap_lo, colmap_hi};
  {
    std::vector<I32> rank_tmp(static_cast<std::size_t>(n));
    split_inputs(p, q, h, s, rank_tmp);
  }
  std::vector<I32> r_lo(static_cast<std::size_t>(h)), r_hi(static_cast<std::size_t>(n - h));
  multiply_alloc(p_lo, q_lo, r_lo, table, cutoff);
  multiply_alloc(p_hi, q_hi, r_hi, table, cutoff);
  std::vector<I32> row_tag(static_cast<std::size_t>(n)), col_tag(static_cast<std::size_t>(n));
  expand_tags(r_lo, r_hi, s, row_tag, col_tag);
  ant_passage(n, row_tag, col_tag, out);
}

// ---------------------------------------------------------------------------
// memory / combined / parallel variants: ping-pong buffers + mapping arena.
//
// Contract: p lives in cur[0, n), q in cur[n, 2n); other[0, 2n) is scratch
// owned by this call; the result replaces cur[0, n).
// ---------------------------------------------------------------------------

void multiply_pooled(I32* cur, I32* other, Index n, Arena& arena,
                     const SmallProductTable* table, Index cutoff, int depth) {
  if (table != nullptr && n <= cutoff) {
    table->multiply({cur, static_cast<std::size_t>(n)},
                    {cur + n, static_cast<std::size_t>(n)},
                    {cur, static_cast<std::size_t>(n)});
    return;
  }
  if (n == 1) {
    cur[0] = 0;
    return;
  }
  const Index h = n / 2;
  const std::size_t frame = arena.mark();
  SplitViews s;
  s.rowmap_lo = arena.alloc(static_cast<std::size_t>(h));
  s.rowmap_hi = arena.alloc(static_cast<std::size_t>(n - h));
  s.colmap_lo = arena.alloc(static_cast<std::size_t>(h));
  s.colmap_hi = arena.alloc(static_cast<std::size_t>(n - h));
  // Children layout in `other`: [p_lo | q_lo | p_hi | q_hi].
  s.p_lo = Span{other, static_cast<std::size_t>(h)};
  s.q_lo = Span{other + h, static_cast<std::size_t>(h)};
  s.p_hi = Span{other + 2 * h, static_cast<std::size_t>(n - h)};
  s.q_hi = Span{other + 2 * h + (n - h), static_cast<std::size_t>(n - h)};
  {
    const std::size_t transient = arena.mark();
    Span rank_tmp = arena.alloc(static_cast<std::size_t>(n));
    split_inputs({cur, static_cast<std::size_t>(n)}, {cur + n, static_cast<std::size_t>(n)},
                 h, s, rank_tmp);
    arena.release(transient);
  }
  if (depth > 0) {
    const std::size_t before_carve = arena.mark();
    Arena a_lo = arena.carve(steady_ant_arena_requirement(h, depth - 1));
    Arena a_hi = arena.carve(steady_ant_arena_requirement(n - h, depth - 1));
#pragma omp task default(none) firstprivate(other, cur, h, a_lo, table, cutoff, depth)
    {
      Arena local = a_lo;
      multiply_pooled(other, cur, h, local, table, cutoff, depth - 1);
    }
#pragma omp task default(none) firstprivate(other, cur, h, n, a_hi, table, cutoff, depth)
    {
      Arena local = a_hi;
      multiply_pooled(other + 2 * h, cur + 2 * h, n - h, local, table, cutoff, depth - 1);
    }
#pragma omp taskwait
    arena.release(before_carve);
  } else {
    const std::size_t child_frame = arena.mark();
    multiply_pooled(other, cur, h, arena, table, cutoff, 0);
    arena.release(child_frame);
    multiply_pooled(other + 2 * h, cur + 2 * h, n - h, arena, table, cutoff, 0);
    arena.release(child_frame);
  }
  Span row_tag = arena.alloc(static_cast<std::size_t>(n));
  Span col_tag = arena.alloc(static_cast<std::size_t>(n));
  expand_tags({other, static_cast<std::size_t>(h)},
              {other + 2 * h, static_cast<std::size_t>(n - h)}, s, row_tag, col_tag);
  ant_passage(n, row_tag, col_tag, {cur, static_cast<std::size_t>(n)});
  arena.release(frame);
}

}  // namespace

std::size_t steady_ant_arena_requirement(Index n, int parallel_depth) {
  // Conservative: sized for the deepest possible recursion (down to order 1,
  // as used when the precalc tables are disabled).
  if (n <= 1) return 16;
  const Index h = n / 2;
  const Index rest = n - h;
  // 2n persistent mapping entries per frame; transient peak is the larger of
  // the rank scratch (n), the children's needs, and the tag scratch (2n).
  const std::size_t maps = static_cast<std::size_t>(2 * n);
  std::size_t children;
  if (parallel_depth > 0) {
    children = steady_ant_arena_requirement(h, parallel_depth - 1) +
               steady_ant_arena_requirement(rest, parallel_depth - 1);
  } else {
    children = steady_ant_arena_requirement(rest, 0);
  }
  const std::size_t transient = std::max(children, static_cast<std::size_t>(2 * n));
  return maps + transient + 8;
}

void AntWorkspace::prepare(Index n, int parallel_depth) {
  const auto ensure = [this](std::vector<I32>& buf, std::size_t need) {
    if (buf.size() < need) {
      ++growths_;
      buf.reserve(std::bit_ceil(need));
      buf.resize(need);
    }
  };
  ensure(cur_, static_cast<std::size_t>(2 * n));
  ensure(other_, static_cast<std::size_t>(2 * n));
  ensure(arena_, steady_ant_arena_requirement(n, std::max(parallel_depth, 0)));
}

std::vector<std::int32_t> multiply_row_to_col(CSpan p, CSpan q, const SteadyAntOptions& opts,
                                              AntWorkspace* ws) {
  if (p.size() != q.size()) throw std::invalid_argument("multiply_row_to_col: order mismatch");
  const Index n = static_cast<Index>(p.size());
  if (n == 0) return {};
  const SmallProductTable* table = opts.precalc ? &SmallProductTable::instance() : nullptr;
  const Index cutoff =
      std::clamp<Index>(opts.precalc_cutoff, 1, SmallProductTable::kMaxOrder);
  std::vector<I32> out(static_cast<std::size_t>(n));
  if (ws == nullptr && !opts.preallocate && opts.parallel_depth <= 0) {
    multiply_alloc(p, q, out, table, cutoff);
    return out;
  }
  const int depth = std::max(opts.parallel_depth, 0);
  // Scratch comes from the workspace when given, otherwise from fresh
  // per-call buffers with identical layout.
  std::vector<I32> local_cur;
  std::vector<I32> local_other;
  ArenaStorage local_storage(ws ? 0 : steady_ant_arena_requirement(n, depth));
  I32* buf_cur;
  I32* buf_other;
  Arena arena;
  if (ws != nullptr) {
    ws->prepare(n, depth);
    buf_cur = ws->cur_.data();
    buf_other = ws->other_.data();
    arena = Arena(ws->arena_.data(), ws->arena_.size());
  } else {
    local_cur.resize(static_cast<std::size_t>(2 * n));
    local_other.resize(static_cast<std::size_t>(2 * n));
    buf_cur = local_cur.data();
    buf_other = local_other.data();
    arena = local_storage.arena();
  }
  std::copy(p.begin(), p.end(), buf_cur);
  std::copy(q.begin(), q.end(), buf_cur + n);
  if (depth > 0) {
#pragma omp parallel default(none) shared(buf_cur, buf_other, n, arena, table, cutoff, depth)
    {
#pragma omp single
      multiply_pooled(buf_cur, buf_other, n, arena, table, cutoff, depth);
    }
  } else {
    multiply_pooled(buf_cur, buf_other, n, arena, table, cutoff, 0);
  }
  std::copy(buf_cur, buf_cur + n, out.begin());
  return out;
}

std::vector<std::int32_t> multiply_row_to_col(CSpan p, CSpan q, const SteadyAntOptions& opts) {
  return multiply_row_to_col(p, q, opts, nullptr);
}

Permutation multiply(const Permutation& p, const Permutation& q, const SteadyAntOptions& opts,
                     AntWorkspace* ws) {
  return Permutation::from_row_to_col(
      multiply_row_to_col(p.row_to_col(), q.row_to_col(), opts, ws));
}

Permutation multiply_base(const Permutation& p, const Permutation& q) {
  return multiply(p, q, SteadyAntOptions{});
}

Permutation multiply_precalc(const Permutation& p, const Permutation& q) {
  return multiply(p, q, SteadyAntOptions{.precalc = true});
}

Permutation multiply_memory(const Permutation& p, const Permutation& q) {
  return multiply(p, q, SteadyAntOptions{.preallocate = true});
}

Permutation multiply_combined(const Permutation& p, const Permutation& q) {
  return multiply(p, q, SteadyAntOptions{.precalc = true, .preallocate = true});
}

Permutation multiply_parallel(const Permutation& p, const Permutation& q, int parallel_depth) {
  return multiply(p, q, SteadyAntOptions{.precalc = true,
                                         .preallocate = true,
                                         .parallel_depth = parallel_depth});
}

}  // namespace semilocal

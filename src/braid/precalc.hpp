// Precomputed products of small permutation matrices (paper Section 4.2.1).
//
// The steady-ant recursion bottoms out on tiny braids; the paper cuts the
// last levels of the recursion tree by precomputing all (5!)^2 = 14400
// products of 5x5 permutation matrices (plus all smaller sizes) and packing
// each product into one 32-bit machine word: 8 tetrades, tetrade k holding
// the column index of the nonzero in row k (a top-left corner of an 8x8
// permutation).
#pragma once

#include <cstdint>
#include <span>

#include "util/types.hpp"

namespace semilocal {

/// Lazily-built lookup tables for sticky products of braids of order <= 5.
class SmallProductTable {
 public:
  /// Largest braid order covered by the tables.
  static constexpr Index kMaxOrder = 5;

  /// Singleton accessor; first call builds the tables (~14k naive products).
  static const SmallProductTable& instance();

  /// Packs a permutation of order n <= 8 into tetrades.
  static std::uint32_t encode(std::span<const std::int32_t> row_to_col);

  /// Unpacks `code` into `row_to_col` (size gives the order).
  static void decode(std::uint32_t code, std::span<std::int32_t> row_to_col);

  /// Looks up r = p (.) q for braids of order p.size() <= kMaxOrder and
  /// writes the result into `out` (same size). Precondition: sizes match.
  void multiply(std::span<const std::int32_t> p, std::span<const std::int32_t> q,
                std::span<std::int32_t> out) const;

  /// Lexicographic rank of a small permutation (Lehmer code), used to index
  /// the lookup tables.
  static std::uint32_t rank(std::span<const std::int32_t> row_to_col);

 private:
  SmallProductTable();

  // tables_[n] has n! * n! packed products; index rank(p) * n! + rank(q).
  std::vector<std::uint32_t> tables_[kMaxOrder + 1];
};

}  // namespace semilocal

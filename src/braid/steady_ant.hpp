// Steady-ant sticky braid multiplication (paper Listings 2 and 5).
//
// Computes R = P (.) Q, the sticky (Demazure) product of two reduced braids
// given as n x n permutation matrices, in O(n log n) time. The divide step
// splits P by columns and Q by rows around the midpoint, recurses on the two
// halves, and the conquer step overlays the two partial results and runs the
// "ant passage": a single monotone walk over the (n+1) x (n+1) grid of
// distribution-matrix corners that tracks the sign of
//   d(i,k) = sigma'_hi(i,k) - sigma'_lo(i,k)
// and emits the "fresh" nonzeros where the minimum switches sides, while
// classifying the overlaid nonzeros into good (kept) and bad (dropped).
//
// Variants evaluated in the paper (Figure 4):
//   base     - plain recursion, per-level heap allocation
//   precalc  - recursion bottoms out in the small-product lookup tables
//   memory   - preallocated ping-pong buffers + mapping arena
//   combined - both optimizations
//   parallel - OpenMP task recursion over the memory variant (Listing 5)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "braid/permutation.hpp"
#include "util/types.hpp"

namespace semilocal {

/// Tuning knobs for the steady-ant multiplication.
struct SteadyAntOptions {
  /// Use the precomputed small-product tables as the recursion base.
  bool precalc = false;
  /// Use preallocated ping-pong buffers and a mapping arena instead of
  /// per-level heap allocation.
  bool preallocate = false;
  /// Number of top recursion levels that spawn OpenMP tasks; 0 runs fully
  /// sequentially. Implies preallocate (sibling tasks need carved arenas).
  int parallel_depth = 0;
  /// Largest order resolved by table lookup when `precalc` is on, clamped
  /// to [1, SmallProductTable::kMaxOrder]. Exposed for the ablation bench
  /// (the paper's footnote weighs order 5 vs the infeasible order 6).
  Index precalc_cutoff = 5;
};

/// Reusable scratch for the preallocated steady-ant variants: the two
/// ping-pong permutation buffers and the mapping arena. Buffers grow
/// geometrically and are reused across calls, so repeated multiplications
/// at steady state allocate only their result vectors. Not thread-safe;
/// use one AntWorkspace per thread. A workspace is consumed by one
/// multiplication at a time (the parallel variant still shares the single
/// arena via carving, exactly as the owning ArenaStorage would).
class AntWorkspace {
 public:
  /// Number of buffer-growth reallocations since construction; constant once
  /// the workspace is warm for the orders it serves.
  [[nodiscard]] std::size_t growth_events() const { return growths_; }

  /// Grows (never shrinks) the buffers for order-`n` products with the given
  /// task depth. Implicit on use; exposed for warm-up before timing loops.
  void prepare(Index n, int parallel_depth);

 private:
  friend std::vector<std::int32_t> multiply_row_to_col(
      std::span<const std::int32_t> p, std::span<const std::int32_t> q,
      const SteadyAntOptions& opts, AntWorkspace* ws);

  std::vector<std::int32_t> cur_;
  std::vector<std::int32_t> other_;
  std::vector<std::int32_t> arena_;
  std::size_t growths_ = 0;
};

/// Low-level entry point on raw row->col arrays (both inputs must be
/// complete permutations of the same order). Returns the product's row->col.
std::vector<std::int32_t> multiply_row_to_col(std::span<const std::int32_t> p,
                                              std::span<const std::int32_t> q,
                                              const SteadyAntOptions& opts = {});

/// Same, drawing all scratch from `ws` (nullptr falls back to fresh
/// allocation). `ws` non-null implies the preallocated code path even when
/// opts.preallocate is false.
std::vector<std::int32_t> multiply_row_to_col(std::span<const std::int32_t> p,
                                              std::span<const std::int32_t> q,
                                              const SteadyAntOptions& opts,
                                              AntWorkspace* ws);

/// Sticky product of two reduced braids. `ws` (when given) supplies the
/// scratch buffers of the preallocated variants.
Permutation multiply(const Permutation& p, const Permutation& q,
                     const SteadyAntOptions& opts = {}, AntWorkspace* ws = nullptr);

/// Named variants matching the paper's evaluation legend.
Permutation multiply_base(const Permutation& p, const Permutation& q);
Permutation multiply_precalc(const Permutation& p, const Permutation& q);
Permutation multiply_memory(const Permutation& p, const Permutation& q);
Permutation multiply_combined(const Permutation& p, const Permutation& q);

/// Parallel steady ant (Listing 5): OpenMP tasks in the top `parallel_depth`
/// levels, sequential combined variant below.
Permutation multiply_parallel(const Permutation& p, const Permutation& q,
                              int parallel_depth);

}  // namespace semilocal

#include "braid/permutation.hpp"

#include <cassert>
#include <stdexcept>

#include "util/random.hpp"

namespace semilocal {

Permutation::Permutation(Index n)
    : row_to_col_(static_cast<std::size_t>(n), kNone),
      col_to_row_(static_cast<std::size_t>(n), kNone) {
  if (n < 0) throw std::invalid_argument("Permutation: negative order");
}

Permutation Permutation::identity(Index n) {
  Permutation p(n);
  for (Index i = 0; i < n; ++i) p.set(i, i);
  return p;
}

Permutation Permutation::reversal(Index n) {
  Permutation p(n);
  for (Index i = 0; i < n; ++i) p.set(i, n - 1 - i);
  return p;
}

Permutation Permutation::from_row_to_col(std::vector<Entry> row_to_col) {
  const Index n = static_cast<Index>(row_to_col.size());
  Permutation p(n);
  p.row_to_col_ = std::move(row_to_col);
  for (Index r = 0; r < n; ++r) {
    const Entry c = p.row_to_col_[static_cast<std::size_t>(r)];
    if (c < 0 || c >= n) throw std::invalid_argument("from_row_to_col: column out of range");
    if (p.col_to_row_[static_cast<std::size_t>(c)] != kNone) {
      throw std::invalid_argument("from_row_to_col: duplicate column");
    }
    p.col_to_row_[static_cast<std::size_t>(c)] = static_cast<Entry>(r);
  }
  return p;
}

Permutation Permutation::random(Index n, std::uint64_t seed) {
  return from_row_to_col(random_permutation_vector(n, seed));
}

void Permutation::set(Index row, Index col) {
  assert(row >= 0 && row < size() && col >= 0 && col < size());
  assert(row_to_col_[static_cast<std::size_t>(row)] == kNone);
  assert(col_to_row_[static_cast<std::size_t>(col)] == kNone);
  row_to_col_[static_cast<std::size_t>(row)] = static_cast<Entry>(col);
  col_to_row_[static_cast<std::size_t>(col)] = static_cast<Entry>(row);
}

bool Permutation::is_complete() const {
  for (const Entry c : row_to_col_) {
    if (c == kNone) return false;
  }
  for (const Entry r : col_to_row_) {
    if (r == kNone) return false;
  }
  // Cross-consistency.
  for (Index r = 0; r < size(); ++r) {
    if (row_of(col_of(r)) != r) return false;
  }
  return true;
}

Permutation Permutation::inverse() const {
  Permutation p(size());
  p.row_to_col_ = col_to_row_;
  p.col_to_row_ = row_to_col_;
  return p;
}

Permutation Permutation::rotate180() const {
  const Index n = size();
  Permutation p(n);
  for (Index r = 0; r < n; ++r) {
    const Entry c = col_of(r);
    if (c != kNone) p.set(n - 1 - r, n - 1 - c);
  }
  return p;
}

Index Permutation::dominance_sum(Index i, Index j) const {
  Index count = 0;
  for (Index r = i; r < size(); ++r) {
    const Entry c = col_of(r);
    if (c != kNone && c < j) ++count;
  }
  return count;
}

std::vector<std::pair<Index, Index>> Permutation::nonzeros() const {
  std::vector<std::pair<Index, Index>> nz;
  nz.reserve(static_cast<std::size_t>(size()));
  for (Index r = 0; r < size(); ++r) {
    const Entry c = col_of(r);
    if (c != kNone) nz.emplace_back(r, c);
  }
  return nz;
}

}  // namespace semilocal

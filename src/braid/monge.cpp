#include "braid/monge.hpp"

#include <algorithm>
#include <stdexcept>

namespace semilocal {

DenseMatrix::DenseMatrix(Index rows, Index cols, Index fill)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows * cols), fill) {
  if (rows < 0 || cols < 0) throw std::invalid_argument("DenseMatrix: negative dimensions");
}

DenseMatrix distribution_matrix(const Permutation& p) {
  const Index n = p.size();
  DenseMatrix sigma(n + 1, n + 1, 0);
  // sigma(i, j) counts nonzeros with row >= i, col < j. Build by scanning
  // rows bottom-up, accumulating a column histogram prefix.
  for (Index i = n - 1; i >= 0; --i) {
    // Start from the row below.
    for (Index j = 0; j <= n; ++j) sigma.at(i, j) = sigma.at(i + 1, j);
    const auto c = p.col_of(i);
    if (c != Permutation::kNone) {
      for (Index j = c + 1; j <= n; ++j) ++sigma.at(i, j);
    }
  }
  return sigma;
}

DenseMatrix min_plus_product(const DenseMatrix& a, const DenseMatrix& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("min_plus_product: inner dimensions differ");
  DenseMatrix c(a.rows(), b.cols(), 0);
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index k = 0; k < b.cols(); ++k) {
      Index best = a.at(i, 0) + b.at(0, k);
      for (Index j = 1; j < a.cols(); ++j) {
        best = std::min(best, a.at(i, j) + b.at(j, k));
      }
      c.at(i, k) = best;
    }
  }
  return c;
}

bool is_monge(const DenseMatrix& m) {
  for (Index i = 0; i + 1 < m.rows(); ++i) {
    for (Index j = 0; j + 1 < m.cols(); ++j) {
      if (m.at(i, j) + m.at(i + 1, j + 1) > m.at(i + 1, j) + m.at(i, j + 1)) {
        return false;
      }
    }
  }
  return true;
}

bool is_unit_monge_distribution(const DenseMatrix& m) {
  if (m.rows() != m.cols() || m.rows() < 1) return false;
  const Index n = m.rows() - 1;
  // Border: sigma(n, j) == 0 (no rows >= n), sigma(i, 0) == 0 (no cols < 0).
  for (Index j = 0; j <= n; ++j) {
    if (m.at(n, j) != 0) return false;
  }
  for (Index i = 0; i <= n; ++i) {
    if (m.at(i, 0) != 0) return false;
  }
  std::vector<Index> col_used(static_cast<std::size_t>(n), 0);
  for (Index r = 0; r < n; ++r) {
    Index row_sum = 0;
    for (Index c = 0; c < n; ++c) {
      const Index d = m.at(r, c + 1) - m.at(r, c) - m.at(r + 1, c + 1) + m.at(r + 1, c);
      if (d != 0 && d != 1) return false;
      row_sum += d;
      col_used[static_cast<std::size_t>(c)] += d;
    }
    if (row_sum != 1) return false;
  }
  for (const Index used : col_used) {
    if (used != 1) return false;
  }
  return true;
}

Permutation permutation_from_distribution(const DenseMatrix& m) {
  if (m.rows() != m.cols() || m.rows() < 1) {
    throw std::invalid_argument("permutation_from_distribution: matrix must be square, order >= 1");
  }
  const Index n = m.rows() - 1;
  Permutation p(n);
  for (Index r = 0; r < n; ++r) {
    for (Index c = 0; c < n; ++c) {
      const Index d = m.at(r, c + 1) - m.at(r, c) - m.at(r + 1, c + 1) + m.at(r + 1, c);
      if (d == 1) {
        p.set(r, c);
      } else if (d != 0) {
        throw std::invalid_argument("permutation_from_distribution: not unit-Monge");
      }
    }
  }
  if (!p.is_complete()) {
    throw std::invalid_argument("permutation_from_distribution: extraction incomplete");
  }
  return p;
}

Permutation multiply_naive(const Permutation& p, const Permutation& q) {
  if (p.size() != q.size()) throw std::invalid_argument("multiply_naive: order mismatch");
  const DenseMatrix product =
      min_plus_product(distribution_matrix(p), distribution_matrix(q));
  return permutation_from_distribution(product);
}

}  // namespace semilocal

// Explicit (dense) Monge machinery: the mathematical ground truth behind
// sticky braid multiplication.
//
// The distribution matrix of an n x n permutation matrix P is the
// (n+1) x (n+1) integer matrix
//   P_sigma(i, j) = |{ (r, c) nonzero in P : r >= i, c < j }|.
// Sticky (Demazure) multiplication of reduced braids is defined by the
// (min,+) product of distribution matrices:
//   (P (.) Q)_sigma(i, k) = min_j ( P_sigma(i, j) + Q_sigma(j, k) ).
// The result is again the distribution matrix of a permutation (the simple
// unit-Monge property), whose nonzeros are recovered by cross-differencing.
//
// Everything here is O(n^2) memory / O(n^3) time and exists as a test oracle
// and for pedagogy; the steady-ant algorithm (steady_ant.hpp) computes the
// same product in O(n log n).
#pragma once

#include <vector>

#include "braid/permutation.hpp"
#include "util/types.hpp"

namespace semilocal {

/// Dense row-major integer matrix, minimal interface.
class DenseMatrix {
 public:
  DenseMatrix(Index rows, Index cols, Index fill = 0);

  [[nodiscard]] Index rows() const { return rows_; }
  [[nodiscard]] Index cols() const { return cols_; }

  [[nodiscard]] Index& at(Index r, Index c) {
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }
  [[nodiscard]] Index at(Index r, Index c) const {
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }

  friend bool operator==(const DenseMatrix&, const DenseMatrix&) = default;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Index> data_;
};

/// Distribution (dominance-sum) matrix of P: size (n+1) x (n+1), computed by
/// suffix/prefix sums in O(n^2).
DenseMatrix distribution_matrix(const Permutation& p);

/// Dense (min,+) matrix product: C(i,k) = min_j A(i,j) + B(j,k). Requires
/// A.cols() == B.rows(). O(n^3).
DenseMatrix min_plus_product(const DenseMatrix& a, const DenseMatrix& b);

/// True iff M(i,j) + M(i+1,j+1) <= M(i+1,j) + M(i,j+1) everywhere (Monge
/// condition for the anti-triangle orientation used here).
bool is_monge(const DenseMatrix& m);

/// True iff m is the distribution matrix of some permutation matrix: border
/// conditions plus every 2x2 cross-difference in {0, 1} with row/col sums 1.
bool is_unit_monge_distribution(const DenseMatrix& m);

/// Recovers the permutation whose distribution matrix is `m` (throws if `m`
/// is not a unit-Monge distribution matrix). Cross-difference extraction:
///   P(r, c) = m(r, c+1) - m(r, c) - m(r+1, c+1) + m(r+1, c).
Permutation permutation_from_distribution(const DenseMatrix& m);

/// Reference sticky multiplication: distribution matrices + (min,+) product
/// + cross-difference extraction. O(n^3) time, O(n^2) memory. The oracle for
/// every fast multiplication algorithm in this library.
Permutation multiply_naive(const Permutation& p, const Permutation& q);

}  // namespace semilocal

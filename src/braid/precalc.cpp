#include "braid/precalc.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <vector>

#include "braid/monge.hpp"
#include "braid/permutation.hpp"

namespace semilocal {
namespace {

constexpr std::uint32_t kFactorial[9] = {1, 1, 2, 6, 24, 120, 720, 5040, 40320};

// Permutation with the given lexicographic rank over order n.
std::vector<std::int32_t> unrank(std::uint32_t rank, Index n) {
  std::vector<std::int32_t> pool(static_cast<std::size_t>(n));
  std::iota(pool.begin(), pool.end(), 0);
  std::vector<std::int32_t> out;
  out.reserve(static_cast<std::size_t>(n));
  for (Index i = n; i > 0; --i) {
    const std::uint32_t f = kFactorial[i - 1];
    const std::uint32_t digit = rank / f;
    rank %= f;
    out.push_back(pool[digit]);
    pool.erase(pool.begin() + digit);
  }
  return out;
}

}  // namespace

std::uint32_t SmallProductTable::rank(std::span<const std::int32_t> row_to_col) {
  const std::size_t n = row_to_col.size();
  assert(n <= 8);
  std::uint32_t r = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t smaller_later = 0;
    for (std::size_t j = i + 1; j < n; ++j) {
      if (row_to_col[j] < row_to_col[i]) ++smaller_later;
    }
    r += smaller_later * kFactorial[n - 1 - i];
  }
  return r;
}

std::uint32_t SmallProductTable::encode(std::span<const std::int32_t> row_to_col) {
  assert(row_to_col.size() <= 8);
  std::uint32_t code = 0;
  for (std::size_t k = 0; k < row_to_col.size(); ++k) {
    code |= static_cast<std::uint32_t>(row_to_col[k] & 0x7) << (4 * k);
  }
  return code;
}

void SmallProductTable::decode(std::uint32_t code, std::span<std::int32_t> row_to_col) {
  for (std::size_t k = 0; k < row_to_col.size(); ++k) {
    row_to_col[k] = static_cast<std::int32_t>((code >> (4 * k)) & 0x7);
  }
}

SmallProductTable::SmallProductTable() {
  for (Index n = 1; n <= kMaxOrder; ++n) {
    const std::uint32_t fact = kFactorial[n];
    auto& table = tables_[n];
    table.resize(static_cast<std::size_t>(fact) * fact);
    for (std::uint32_t rp = 0; rp < fact; ++rp) {
      const auto p = Permutation::from_row_to_col(unrank(rp, n));
      for (std::uint32_t rq = 0; rq < fact; ++rq) {
        const auto q = Permutation::from_row_to_col(unrank(rq, n));
        const Permutation r = multiply_naive(p, q);
        table[static_cast<std::size_t>(rp) * fact + rq] = encode(r.row_to_col());
      }
    }
  }
}

const SmallProductTable& SmallProductTable::instance() {
  static const SmallProductTable table;  // thread-safe magic static
  return table;
}

void SmallProductTable::multiply(std::span<const std::int32_t> p,
                                 std::span<const std::int32_t> q,
                                 std::span<std::int32_t> out) const {
  const std::size_t n = p.size();
  assert(n >= 1 && static_cast<Index>(n) <= kMaxOrder);
  assert(q.size() == n && out.size() == n);
  const std::uint32_t fact = kFactorial[n];
  const std::uint32_t code =
      tables_[n][static_cast<std::size_t>(rank(p)) * fact + rank(q)];
  decode(code, out);
}

}  // namespace semilocal

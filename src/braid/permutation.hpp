// Permutation matrices == reduced sticky braids.
//
// An n x n permutation matrix represents a reduced sticky braid of order n
// (Section 3 of the paper): the nonzero (r, c) records a strand entering at
// index r and exiting at index c. The library stores a permutation as the
// pair of inverse maps row->col and col->row, i.e. exactly the "two lists of
// size N" representation the paper's memory analysis assumes.
//
// Dominance convention used throughout the library:
//   sigma(i, j) = |{ (r, c) nonzero : r >= i, c < j }|      (lower-left)
// with i, j in [0, n]. Under this convention the distribution matrix of the
// sticky product P (.) Q is the (min,+) product of the distribution matrices
// of P and Q (see monge.hpp), and the semi-local LCS matrix satisfies
//   H(i, j) = j - i + m - sigma_{P_{a,b}}(i, j).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace semilocal {

/// Dense permutation of [0, n): both directions of the bijection.
class Permutation {
 public:
  /// Entry type; 32-bit as braids of order up to ~2^31 are supported.
  using Entry = std::int32_t;

  /// Sentinel for "no nonzero in this row/column" while under construction.
  static constexpr Entry kNone = -1;

  Permutation() = default;

  /// Creates an empty (all kNone) permutation of order n.
  explicit Permutation(Index n);

  /// The identity braid: strand i exits at i.
  static Permutation identity(Index n);

  /// The reversal braid: strand i exits at n-1-i (every pair crossed once).
  static Permutation reversal(Index n);

  /// Builds from a row->col vector; validates it is a permutation.
  static Permutation from_row_to_col(std::vector<Entry> row_to_col);

  /// Uniformly random permutation (Fisher-Yates) -- the workload of the
  /// paper's braid-multiplication experiments (Figure 4).
  static Permutation random(Index n, std::uint64_t seed);

  [[nodiscard]] Index size() const { return static_cast<Index>(row_to_col_.size()); }

  /// Column of the nonzero in `row` (kNone if unset).
  [[nodiscard]] Entry col_of(Index row) const { return row_to_col_[static_cast<std::size_t>(row)]; }

  /// Row of the nonzero in `col` (kNone if unset).
  [[nodiscard]] Entry row_of(Index col) const { return col_to_row_[static_cast<std::size_t>(col)]; }

  /// Places a nonzero at (row, col); overwrites nothing -- both slots must
  /// currently be empty (enforced in debug builds).
  void set(Index row, Index col);

  /// True iff every row and every column holds exactly one nonzero.
  [[nodiscard]] bool is_complete() const;

  /// Inverse permutation == matrix transpose.
  [[nodiscard]] Permutation inverse() const;

  /// Reverses both coordinates: nonzero (r, c) -> (n-1-r, n-1-c). This is
  /// the index substitution of the paper's flip theorem (Theorem 3.5).
  [[nodiscard]] Permutation rotate180() const;

  /// Dominance count sigma(i, j) = |{(r, c) : r >= i, c < j}| computed in
  /// O(n); intended for tests and small inputs (use dominance/ for queries).
  [[nodiscard]] Index dominance_sum(Index i, Index j) const;

  /// All nonzeros as (row, col), in row order.
  [[nodiscard]] std::vector<std::pair<Index, Index>> nonzeros() const;

  /// Direct access to the underlying maps (read-only).
  [[nodiscard]] const std::vector<Entry>& row_to_col() const { return row_to_col_; }
  [[nodiscard]] const std::vector<Entry>& col_to_row() const { return col_to_row_; }

  friend bool operator==(const Permutation&, const Permutation&) = default;

 private:
  std::vector<Entry> row_to_col_;
  std::vector<Entry> col_to_row_;
};

}  // namespace semilocal

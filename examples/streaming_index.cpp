// Streaming similarity index via incremental kernel composition.
//
//   build/examples/streaming_index [pattern_length] [chunk] [chunks]
//
// A fixed query pattern is matched against a text stream that grows chunk
// by chunk (think: log lines arriving, contigs being appended). Instead of
// recomputing an O(m * n) DP per chunk, the kernel is UPDATED via the
// composition theorem: comb only the (m x chunk) block for the new text and
// stitch it on with one O((m+n) log(m+n)) steady-ant multiplication. After
// each chunk the freshest best-matching window is reported.
#include <cstdlib>
#include <iostream>

#include "align/distance.hpp"
#include "core/incremental.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace semilocal;

int main(int argc, char** argv) {
  const Index pattern_length = argc > 1 ? std::atoll(argv[1]) : 20000;
  const Index chunk = argc > 2 ? std::atoll(argv[2]) : 4000;
  const Index chunks = argc > 3 ? std::atoll(argv[3]) : 6;
  constexpr Symbol kAlphabet = 8;

  const Sequence pattern = uniform_sequence(pattern_length, kAlphabet, 1);
  IncrementalKernel index(pattern, SequenceView{});

  Rng rng(2);
  Table log({"chunk", "text_length", "update_s", "recompute_s", "best_window",
             "best_distance"});
  for (Index c = 0; c < chunks; ++c) {
    // Every other chunk hides a mutated copy of a pattern slice (as much of
    // the pattern as fits into the chunk).
    Sequence incoming = uniform_sequence(chunk, kAlphabet, 100 + static_cast<std::uint64_t>(c));
    if (c % 2 == 1) {
      const Index slice_len = std::min<Index>(pattern_length, (3 * chunk) / 4);
      const Index slice_start = rng.uniform(0, pattern_length - slice_len);
      const SequenceView slice{pattern.data() + slice_start,
                               static_cast<std::size_t>(slice_len)};
      const auto copy = mutate_sequence(slice, 0.08, slice_len / 25, kAlphabet,
                                        200 + static_cast<std::uint64_t>(c));
      const Index room = chunk - static_cast<Index>(copy.size());
      if (room > 0) {
        const auto site = static_cast<std::size_t>(rng.uniform(0, room - 1));
        std::copy(copy.begin(), copy.end(),
                  incoming.begin() + static_cast<std::ptrdiff_t>(site));
      }
    }

    Timer t;
    index.append_b(incoming);
    const double update_s = t.seconds();

    // What a from-scratch recomputation would cost at this length:
    t.reset();
    const auto full = comb_antidiag(pattern, index.b());
    const double recompute_s = t.seconds();
    if (!(full.permutation() == index.kernel().permutation())) {
      std::cerr << "incremental kernel diverged from direct recomputation!\n";
      return 1;
    }

    const WindowDistances wd(index.kernel());
    const Index width = std::min<Index>(pattern_length, index.kernel().n());
    const auto [start, dist] = wd.best_window(width, /*stride=*/64);
    log.row()
        .cell(static_cast<long long>(c))
        .cell(static_cast<long long>(index.b().size()))
        .cell(update_s, 5)
        .cell(recompute_s, 5)
        .cell(std::string("[").append(std::to_string(start)).append(", ")
                  .append(std::to_string(start + width)).append(")"))
        .cell(static_cast<long long>(dist));
  }
  log.print(std::cout, "streaming index: incremental update vs full recomputation");
  std::cout << "\n(odd chunks hide a mutated pattern slice: best-distance dips when one\n"
               " arrives; update cost stays flat while full recomputation grows with the\n"
               " text -- the composition theorem at work)\n";
  return 0;
}

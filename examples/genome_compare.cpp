// Genome comparison: the paper's real-life scenario on synthetic virus
// genomes (see DESIGN.md for the dataset substitution).
//
//   build/examples/genome_compare [genome_length] [fasta_out_dir]
//
// Generates a pair of related genomes from a common ancestor, writes them as
// FASTA, computes the semi-local kernel with the parallel hybrid algorithm,
// and uses the kernel's substring queries to produce a window-identity
// profile: which regions of genome B best match the whole of genome A --
// the kind of analysis that needs *many* LCS scores and where one kernel
// replaces thousands of DP runs.
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>

#include "core/api.hpp"
#include "util/fasta.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace semilocal;

int main(int argc, char** argv) {
  const Index genome_length = argc > 1 ? std::atoll(argv[1]) : 30000;
  const std::string out_dir = argc > 2 ? argv[2] : ".";

  // 1. Build the dataset: one ancestor, two diverged descendants.
  GenomeModel model;
  model.length = genome_length;
  MutationModel mutations;
  mutations.substitution_rate = 0.03;
  mutations.indel_rate = 0.003;
  const auto [rec_a, rec_b] = generate_genome_pair(model, mutations, /*seed=*/2024);
  {
    std::ofstream fasta(out_dir + "/genome_pair.fasta");
    write_fasta(fasta, {rec_a, rec_b});
  }
  std::cout << "genomes: " << rec_a.id << " (" << rec_a.length() << " bp), " << rec_b.id
            << " (" << rec_b.length() << " bp) -> genome_pair.fasta\n";

  const Sequence a = pack_dna(rec_a.residues);
  const Sequence b = pack_dna(rec_b.residues);

  // 2. One semi-local kernel for the pair (parallel hybrid algorithm).
  Timer t;
  const auto kernel = semi_local_kernel(
      a, b, {.strategy = Strategy::kHybridTiled, .parallel = true});
  std::cout << "kernel built in " << t.seconds() << " s\n";
  const double identity =
      static_cast<double>(kernel.lcs()) / static_cast<double>(std::max(a.size(), b.size()));
  std::cout << "global LCS = " << kernel.lcs() << "  (identity "
            << std::fixed << std::setprecision(1) << 100.0 * identity << "%)\n\n";

  // 3. Homology search: take a gene-sized fragment of A, build ONE kernel
  // of (fragment, B), and read off LCS(fragment, b[w0, w1)) for every
  // sliding window -- locating where the fragment lives in B without a
  // single per-window alignment.
  const Index frag_len = std::max<Index>(1, genome_length / 10);
  const Index frag_start = genome_length / 3;
  const SequenceView fragment{a.data() + frag_start, static_cast<std::size_t>(frag_len)};
  t.reset();
  const auto frag_kernel = semi_local_kernel(
      fragment, b, {.strategy = Strategy::kHybridTiled, .parallel = true});
  std::cout << "fragment kernel (" << frag_len << " bp query) built in " << t.seconds()
            << " s\n";
  const Index window = frag_len;  // same-size windows of B
  const Index step = std::max<Index>(1, window / 8);
  Table profile({"window_start", "window_end", "lcs", "identity_pct"});
  Index best_start = 0;
  Index best_score = -1;
  for (Index w0 = 0; w0 + window <= static_cast<Index>(b.size()); w0 += step) {
    const Index score = frag_kernel.string_substring(w0, w0 + window);
    profile.row().cell(static_cast<long long>(w0)).cell(static_cast<long long>(w0 + window))
        .cell(static_cast<long long>(score))
        .cell(100.0 * static_cast<double>(score) / static_cast<double>(window), 1);
    if (score > best_score) {
      best_score = score;
      best_start = w0;
    }
  }
  profile.print(std::cout,
                "identity of A[" + std::to_string(frag_start) + ", " +
                    std::to_string(frag_start + frag_len) + ") against windows of B");
  std::cout << "\nfragment of A taken at " << frag_start << "; best-matching window of B: ["
            << best_start << ", " << best_start + window << ") with LCS " << best_score
            << "\n";

  // 4. Overlap detection via prefix-suffix scores (assembly-style use):
  // how strongly does a suffix of A continue into a prefix of B?
  std::cout << "\nsuffix(A)/prefix(B) overlap scores:\n";
  for (const Index k : {genome_length / 8, genome_length / 4, genome_length / 2}) {
    const Index s = static_cast<Index>(a.size()) - k;
    const Index score = kernel.suffix_prefix(s, std::min<Index>(k, static_cast<Index>(b.size())));
    std::cout << "  overlap " << k << " bp: LCS = " << score << " ("
              << std::setprecision(1)
              << 100.0 * static_cast<double>(score) / static_cast<double>(k) << "%)\n";
  }
  return 0;
}

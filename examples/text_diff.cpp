// Line-oriented text diff built on the library's LCS machinery.
//
//   build/examples/text_diff [file_a file_b]
//
// Each line is hashed to one symbol; Hirschberg's linear-space LCS recovers
// the common-line backbone, from which a unified-style diff is emitted. A
// semi-local kernel over the line sequences additionally reports which
// region of file B best matches the whole of file A (useful when a block of
// text moved wholesale). With no arguments a small demo pair is used.
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/api.hpp"
#include "lcs/hirschberg.hpp"
#include "util/types.hpp"

using namespace semilocal;

namespace {

std::vector<std::string> read_lines(std::istream& in) {
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// Maps each distinct line to a dense symbol id.
Sequence encode_lines(const std::vector<std::string>& lines,
                      std::unordered_map<std::string, Symbol>& ids) {
  Sequence out;
  out.reserve(lines.size());
  for (const auto& l : lines) {
    const auto [it, inserted] = ids.emplace(l, static_cast<Symbol>(ids.size()));
    out.push_back(it->second);
  }
  return out;
}

std::vector<std::string> demo_a() {
  return {"#include <stdio.h>", "", "int main(void) {", "  int x = 1;",
          "  printf(\"%d\\n\", x);", "  return 0;", "}"};
}

std::vector<std::string> demo_b() {
  return {"#include <stdio.h>", "#include <stdlib.h>", "", "int main(void) {",
          "  int x = 2;", "  printf(\"%d\\n\", x);", "  return EXIT_SUCCESS;", "}"};
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> lines_a;
  std::vector<std::string> lines_b;
  if (argc == 3) {
    std::ifstream fa(argv[1]);
    std::ifstream fb(argv[2]);
    if (!fa || !fb) {
      std::cerr << "cannot open input files\n";
      return 1;
    }
    lines_a = read_lines(fa);
    lines_b = read_lines(fb);
  } else {
    lines_a = demo_a();
    lines_b = demo_b();
    std::cout << "(no files given; diffing a built-in demo pair)\n\n";
  }

  std::unordered_map<std::string, Symbol> ids;
  const Sequence a = encode_lines(lines_a, ids);
  const Sequence b = encode_lines(lines_b, ids);

  // 1. The diff itself: common backbone via Hirschberg, then a two-pointer
  // emit of -/+/space lines.
  const auto common = lcs_hirschberg(a, b).subsequence;
  std::size_t ia = 0;
  std::size_t ib = 0;
  std::size_t ic = 0;
  Index removed = 0;
  Index added = 0;
  while (ia < a.size() || ib < b.size()) {
    if (ic < common.size() && ia < a.size() && a[ia] == common[ic] && ib < b.size() &&
        b[ib] == common[ic]) {
      std::cout << "  " << lines_a[ia] << '\n';
      ++ia;
      ++ib;
      ++ic;
    } else if (ia < a.size() && (ic >= common.size() || a[ia] != common[ic])) {
      std::cout << "- " << lines_a[ia] << '\n';
      ++ia;
      ++removed;
    } else {
      std::cout << "+ " << lines_b[ib] << '\n';
      ++ib;
      ++added;
    }
  }
  std::cout << "\n" << removed << " line(s) removed, " << added << " added, "
            << common.size() << " unchanged\n";

  // 2. Block-move hint from the semi-local kernel: where in B does the whole
  // of A embed best?
  if (!a.empty() && !b.empty()) {
    const auto kernel = semi_local_kernel(a, b);
    const Index width = std::min<Index>(static_cast<Index>(b.size()),
                                        static_cast<Index>(a.size()));
    Index best_start = 0;
    Index best = -1;
    for (Index j0 = 0; j0 + width <= static_cast<Index>(b.size()); ++j0) {
      const Index s = kernel.string_substring(j0, j0 + width);
      if (s > best) {
        best = s;
        best_start = j0;
      }
    }
    std::cout << "best embedding of A inside B: lines [" << best_start << ", "
              << best_start + width << ") share " << best << "/" << a.size()
              << " lines with A\n";
  }
  return 0;
}

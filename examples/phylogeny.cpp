// Phylogeny reconstruction from kernel-based pairwise distances.
//
//   build/examples/phylogeny [genome_length] [generations]
//
// Evolves a small binary tree of genomes from one ancestor (each internal
// node spawns two diverged children), computes all pairwise indel distances
// with semi-local kernels (pattern-level parallel), and rebuilds the tree
// with UPGMA clustering. The recovered topology is printed in Newick format
// next to the ground truth; sibling leaves should pair up first.
#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "util/fasta.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace semilocal;

namespace {

struct Leaf {
  std::string name;
  Sequence genome;
};

// Depth-`generations` balanced binary evolution: names encode the lineage
// ("R00", "R01", ... share longer prefixes when more closely related).
void evolve_tree(const FastaRecord& node, const std::string& name, int generations,
                 const MutationModel& mut, std::uint64_t seed, std::vector<Leaf>& leaves) {
  if (generations == 0) {
    leaves.push_back({name, pack_dna(node.residues)});
    return;
  }
  const auto child0 = evolve_genome(node, mut, seed * 2 + 1, name + "0");
  const auto child1 = evolve_genome(node, mut, seed * 2 + 2, name + "1");
  evolve_tree(child0, name + "0", generations - 1, mut, seed * 2 + 1, leaves);
  evolve_tree(child1, name + "1", generations - 1, mut, seed * 2 + 2, leaves);
}

// UPGMA over a distance matrix; returns the Newick string.
std::string upgma(std::vector<std::vector<double>> dist, std::vector<std::string> labels) {
  std::vector<Index> sizes(labels.size(), 1);
  std::vector<bool> alive(labels.size(), true);
  Index remaining = static_cast<Index>(labels.size());
  while (remaining > 1) {
    // Find the closest live pair.
    double best = std::numeric_limits<double>::max();
    std::size_t bi = 0;
    std::size_t bj = 0;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (!alive[i]) continue;
      for (std::size_t j = i + 1; j < labels.size(); ++j) {
        if (!alive[j]) continue;
        if (dist[i][j] < best) {
          best = dist[i][j];
          bi = i;
          bj = j;
        }
      }
    }
    // Merge j into i (size-weighted average linkage).
    for (std::size_t k = 0; k < labels.size(); ++k) {
      if (!alive[k] || k == bi || k == bj) continue;
      const double merged =
          (dist[bi][k] * static_cast<double>(sizes[bi]) +
           dist[bj][k] * static_cast<double>(sizes[bj])) /
          static_cast<double>(sizes[bi] + sizes[bj]);
      dist[bi][k] = merged;
      dist[k][bi] = merged;
    }
    labels[bi] = "(" + labels[bi] + "," + labels[bj] + ")";
    sizes[bi] += sizes[bj];
    alive[bj] = false;
    --remaining;
  }
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (alive[i]) return labels[i] + ";";
  }
  return ";";
}

}  // namespace

int main(int argc, char** argv) {
  const Index genome_length = argc > 1 ? std::atoll(argv[1]) : 6000;
  const int generations = argc > 2 ? std::atoi(argv[2]) : 3;  // 2^3 = 8 leaves

  GenomeModel model;
  model.length = genome_length;
  MutationModel mut;
  mut.substitution_rate = 0.015;
  mut.indel_rate = 0.0015;
  const auto ancestor = generate_genome(model, 5);
  std::vector<Leaf> leaves;
  evolve_tree(ancestor, "R", generations, mut, 11, leaves);
  const auto k = leaves.size();
  std::cout << k << " leaf genomes of ~" << genome_length << " bp after " << generations
            << " generations\n\n";

  // Pairwise identity distances: d = 1 - LCS / max(len).
  Timer t;
  std::vector<std::vector<double>> dist(k, std::vector<double>(k, 0.0));
#pragma omp parallel for schedule(dynamic)
  for (std::ptrdiff_t idx = 0; idx < static_cast<std::ptrdiff_t>(k * k); ++idx) {
    const auto i = static_cast<std::size_t>(idx) / k;
    const auto j = static_cast<std::size_t>(idx) % k;
    if (j <= i) continue;
    const auto kern = semi_local_kernel(leaves[i].genome, leaves[j].genome,
                                        {.strategy = Strategy::kAntidiagSimd});
    const double longer = static_cast<double>(
        std::max(leaves[i].genome.size(), leaves[j].genome.size()));
    const double d = 1.0 - static_cast<double>(kern.lcs()) / longer;
    dist[i][j] = d;
    dist[j][i] = d;
  }
  std::cout << k * (k - 1) / 2 << " pairwise kernels in " << t.seconds() << " s\n\n";

  Table table({"pair", "distance"});
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      table.row().cell(leaves[i].name + " ~ " + leaves[j].name).cell(dist[i][j], 4);
    }
  }
  table.print(std::cout, "pairwise identity distances");

  std::vector<std::string> names;
  names.reserve(k);
  for (const auto& leaf : leaves) names.push_back(leaf.name);
  std::cout << "\nUPGMA tree:   " << upgma(dist, names) << "\n";
  std::cout << "ground truth: names sharing longer prefixes are closer relatives\n";

  // Simple topology check: every leaf's nearest neighbour should be its
  // lineage sibling (same name except the last character).
  std::size_t correct = 0;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t nearest = (i == 0) ? 1 : 0;
    for (std::size_t j = 0; j < k; ++j) {
      if (j != i && dist[i][j] < dist[i][nearest]) nearest = j;
    }
    const auto& ni = leaves[i].name;
    const auto& nj = leaves[nearest].name;
    if (ni.size() == nj.size() &&
        ni.compare(0, ni.size() - 1, nj, 0, nj.size() - 1) == 0) {
      ++correct;
    }
  }
  std::cout << "nearest-neighbour sibling recovery: " << correct << "/" << k << "\n";
  return 0;
}

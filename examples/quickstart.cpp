// Quickstart: the 5-minute tour of the semilocal library.
//
//   build/examples/quickstart [length]
//
// Computes the semi-local LCS kernel of two strings, shows the global LCS
// score (cross-checked against a classical baseline), answers a handful of
// substring queries from the single kernel, and demonstrates that all
// algorithm strategies agree.
#include <cstdlib>
#include <iostream>

#include "core/api.hpp"
#include "lcs/dp.hpp"
#include "lcs/hirschberg.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

using namespace semilocal;

int main(int argc, char** argv) {
  const Index length = argc > 1 ? std::atoll(argv[1]) : 2000;

  // 1. Inputs: the paper's synthetic workload (rounded-normal integers).
  const Sequence a = rounded_normal_sequence(length, 1.5, /*seed=*/1);
  const Sequence b = rounded_normal_sequence(length + length / 3, 1.5, /*seed=*/2);
  std::cout << "strings: |a| = " << a.size() << ", |b| = " << b.size() << "\n\n";

  // 2. One kernel computation answers the global score...
  Timer t;
  const SemiLocalKernel kernel = semi_local_kernel(a, b);
  const double kernel_ms = t.milliseconds();
  std::cout << "semi-local kernel built in " << kernel_ms << " ms ("
            << strategy_name(SemiLocalOptions{}.strategy) << ")\n";
  std::cout << "LCS(a, b) = " << kernel.lcs() << "\n";

  // ...which we can cross-check with the classical DP baseline.
  t.reset();
  const Index dp_score = lcs_score_dp(a, b);
  std::cout << "classical DP agrees: " << std::boolalpha << (dp_score == kernel.lcs())
            << " (" << t.milliseconds() << " ms)\n\n";

  // 3. The same kernel answers every substring question with NO extra DP:
  std::cout << "queries from the one kernel:\n";
  std::cout << "  LCS(a, first half of b)       = "
            << kernel.string_substring(0, static_cast<Index>(b.size()) / 2) << "\n";
  std::cout << "  LCS(a, last third of b)       = "
            << kernel.string_substring(2 * static_cast<Index>(b.size()) / 3,
                                       static_cast<Index>(b.size()))
            << "\n";
  std::cout << "  LCS(first half of a, b)       = "
            << kernel.substring_string(0, length / 2) << "\n";
  std::cout << "  LCS(prefix(a,1/4), suffix(b,1/4)) = "
            << kernel.prefix_suffix(length / 4,
                                    3 * static_cast<Index>(b.size()) / 4)
            << "\n\n";

  // 4. Every strategy in the library computes the identical kernel.
  for (const Strategy s :
       {Strategy::kRowMajor, Strategy::kAntidiagSimd, Strategy::kLoadBalanced,
        Strategy::kRecursive, Strategy::kHybrid, Strategy::kHybridTiled}) {
    t.reset();
    const auto k = semi_local_kernel(a, b, {.strategy = s, .parallel = true});
    std::cout << "  " << strategy_name(s) << ": LCS = " << k.lcs() << "  ("
              << t.milliseconds() << " ms)"
              << (k.permutation() == kernel.permutation() ? "" : "  <-- MISMATCH!")
              << "\n";
  }

  // 5. Need an actual subsequence, not just scores? Hirschberg in O(m+n) memory.
  const auto witness = lcs_hirschberg(a, b);
  std::cout << "\nwitness subsequence length = " << witness.subsequence.size()
            << " (valid: " << is_common_subsequence(witness.subsequence, a, b) << ")\n";
  return 0;
}

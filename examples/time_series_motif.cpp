// Time-series motif analysis with the bit-parallel combing LCS.
//
//   build/examples/time_series_motif [series_length]
//
// The paper's conclusion suggests applying these techniques to pattern
// analysis in time-series data. This example discretizes two noisy series
// into binary up/down move sequences and uses the novel bit-parallel
// combing algorithm (Listing 8) to compute similarity between them and
// across lagged windows -- a cheap LCS-based analogue of cross-correlation
// that is robust to local time warping.
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "bitlcs/bitwise_combing.hpp"
#include "lcs/dp.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace semilocal;

namespace {

// Synthetic "market-like" series: trend + seasonality + noise.
std::vector<double> make_series(Index length, double phase, double noise,
                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(static_cast<std::size_t>(length));
  double level = 100.0;
  for (Index t = 0; t < length; ++t) {
    const double season = 3.0 * std::sin(0.011 * static_cast<double>(t) + phase) +
                          1.2 * std::sin(0.047 * static_cast<double>(t) + 2.0 * phase);
    level += 0.01 + noise * (2.0 * rng.uniform01() - 1.0);
    xs[static_cast<std::size_t>(t)] = level + season;
  }
  return xs;
}

// Binary up/down discretization: 1 if the series rose at step t.
Sequence discretize(const std::vector<double>& xs) {
  Sequence out;
  out.reserve(xs.size());
  for (std::size_t t = 1; t < xs.size(); ++t) {
    out.push_back(xs[t] > xs[t - 1] ? 1 : 0);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Index length = argc > 1 ? std::atoll(argv[1]) : 200000;

  // Two series sharing structure: same seasonal engine, different noise and
  // a deliberate phase lag; plus one unrelated control series.
  const auto sa = discretize(make_series(length, 0.0, 0.15, 1));
  const auto sb = discretize(make_series(length, 0.55, 0.15, 2));  // lag ~ 0.55/0.011 = 50
  const auto sc = discretize(make_series(length, 0.0, 4.0, 3));    // noise-dominated

  std::cout << "binary move sequences of length " << sa.size() << "\n\n";

  const auto similarity = [](SequenceView x, SequenceView y) {
    return static_cast<double>(lcs_bit_combing(x, y, BitVariant::kOptimized, true)) /
           static_cast<double>(std::max(x.size(), y.size()));
  };

  Timer t;
  const double sim_ab = similarity(sa, sb);
  const double one_run = t.seconds();
  std::cout << "bit-parallel LCS similarity (one run: " << one_run << " s)\n";
  std::cout << "  related series   A~B: " << sim_ab << "\n";
  std::cout << "  noisy control    A~C: " << similarity(sa, sc) << "\n";
  std::cout << "  self             A~A: " << similarity(sa, sa) << "\n\n";

  // Lag scan: slide B against A and find the lag maximising LCS similarity.
  // The generator shifts B's seasonal component by ~50 steps.
  const Index max_lag = std::min<Index>(100, static_cast<Index>(sa.size()) / 4);
  const Index lag_step = std::max<Index>(1, max_lag / 10);
  Table lags({"lag", "similarity"});
  double best_sim = -1.0;
  Index best_lag = 0;
  for (Index lag = 0; lag <= max_lag; lag += lag_step) {
    const SequenceView va{sa.data() + lag, sa.size() - static_cast<std::size_t>(lag)};
    const SequenceView vb{sb.data(), sb.size() - static_cast<std::size_t>(lag)};
    const double sim = similarity(va, vb);
    lags.row().cell(static_cast<long long>(lag)).cell(sim, 4);
    if (sim > best_sim) {
      best_sim = sim;
      best_lag = lag;
    }
  }
  lags.print(std::cout, "lag scan (shift A left by `lag` against B)");
  std::cout << "\nbest alignment lag = " << best_lag << " (similarity " << best_sim << ")\n";

  // Sanity: bit-parallel equals classical DP on a truncated prefix.
  const Index check = std::min<Index>(3000, static_cast<Index>(sa.size()));
  const SequenceView pa{sa.data(), static_cast<std::size_t>(check)};
  const SequenceView pb{sb.data(), static_cast<std::size_t>(check)};
  std::cout << "\nDP cross-check on " << check
            << "-step prefix: " << std::boolalpha
            << (lcs_bit_combing(pa, pb) == lcs_score_dp(pa, pb)) << "\n";
  return 0;
}

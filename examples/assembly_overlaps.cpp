// Fragment overlap detection via the suffix-prefix quadrant.
//
//   build/examples/assembly_overlaps [genome_length] [fragments]
//
// Shreds a synthetic genome into overlapping fragments (shuffled, with
// sequencing noise), then recovers the layout: for every ordered fragment
// pair (f, g) a single semi-local kernel of (f, g) yields
// LCS(suffix of f, prefix of g) for EVERY overlap length at once (90% id.) -- the
// overlap stage of an OLC assembler. The best successor chain is compared
// to the ground-truth fragment order.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/api.hpp"
#include "util/fasta.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace semilocal;

namespace {

struct Fragment {
  Sequence bases;
  Index true_start = 0;  // position in the genome (ground truth)
  int id = 0;
};

// Best overlap of a suffix of `f` with a prefix of `g`: maximise overlap
// length subject to >= 80% identity within the overlap.
struct Overlap {
  Index length = 0;
  Index score = 0;
};

Overlap best_overlap(const SemiLocalKernel& kernel) {
  const Index m = kernel.m();
  const Index n = kernel.n();
  Overlap best;
  for (Index len = std::min(m, n); len >= 30; --len) {
    const Index score = kernel.suffix_prefix(m - len, len);
    if (score * 10 >= len * 9) {  // >= 90% identity
      best.length = len;
      best.score = score;
      break;  // longest acceptable overlap wins
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const Index genome_length = argc > 1 ? std::atoll(argv[1]) : 12000;
  const Index fragment_count = argc > 2 ? std::atoll(argv[2]) : 10;

  GenomeModel model;
  model.length = genome_length;
  const auto genome_record = generate_genome(model, 7);
  const Sequence genome = pack_dna(genome_record.residues);

  // Shred: fragments tile the genome with ~30% overlaps, plus 1% noise.
  const Index frag_len = genome_length / fragment_count * 13 / 10;
  std::vector<Fragment> fragments;
  Rng rng(8);
  for (Index f = 0; f < fragment_count; ++f) {
    const Index start =
        std::min(genome_length - frag_len, f * (genome_length - frag_len) / std::max<Index>(1, fragment_count - 1));
    const SequenceView view{genome.data() + start, static_cast<std::size_t>(frag_len)};
    Fragment frag;
    frag.bases = mutate_sequence(view, 0.01, frag_len / 100, 4, 50 + static_cast<std::uint64_t>(f));
    frag.true_start = start;
    frag.id = static_cast<int>(f);
    fragments.push_back(std::move(frag));
  }
  std::shuffle(fragments.begin(), fragments.end(), Rng(9).engine());
  std::cout << fragments.size() << " fragments of ~" << frag_len << " bp from a "
            << genome_length << " bp genome (shuffled, 1% noise)\n\n";

  // All-pairs suffix/prefix overlaps.
  Timer t;
  const Index k = static_cast<Index>(fragments.size());
  std::vector<Overlap> overlaps(static_cast<std::size_t>(k * k));
  for (Index i = 0; i < k; ++i) {
    for (Index j = 0; j < k; ++j) {
      if (i == j) continue;
      const auto kernel = semi_local_kernel(
          fragments[static_cast<std::size_t>(i)].bases,
          fragments[static_cast<std::size_t>(j)].bases,
          {.strategy = Strategy::kAntidiagSimd});
      overlaps[static_cast<std::size_t>(i * k + j)] = best_overlap(kernel);
    }
  }
  std::cout << "computed " << k * (k - 1) << " pairwise overlap profiles in " << t.seconds()
            << " s\n\n";

  // Greedy chain: start from the fragment that is nobody's good successor.
  Table table({"fragment", "true_start", "best_successor", "overlap_bp", "identity_pct"});
  std::vector<int> successor(static_cast<std::size_t>(k), -1);
  for (Index i = 0; i < k; ++i) {
    Index best_len = 0;
    int best_j = -1;
    for (Index j = 0; j < k; ++j) {
      if (i == j) continue;
      const auto& o = overlaps[static_cast<std::size_t>(i * k + j)];
      if (o.length > best_len) {
        best_len = o.length;
        best_j = static_cast<int>(j);
      }
    }
    successor[static_cast<std::size_t>(i)] = best_j;
    const auto& o = overlaps[static_cast<std::size_t>(i * k + best_j)];
    table.row()
        .cell(static_cast<long long>(fragments[static_cast<std::size_t>(i)].id))
        .cell(static_cast<long long>(fragments[static_cast<std::size_t>(i)].true_start))
        .cell(best_j >= 0 ? static_cast<long long>(fragments[static_cast<std::size_t>(best_j)].id) : -1LL)
        .cell(static_cast<long long>(o.length))
        .cell(o.length > 0 ? 100.0 * static_cast<double>(o.score) / static_cast<double>(o.length)
                           : 0.0,
              1);
  }
  table.print(std::cout, "best successor per fragment (suffix/prefix overlaps)");

  // Score the layout recovery: a successor is correct when its true start
  // is the next one along the genome.
  std::vector<Index> order(static_cast<std::size_t>(k));
  for (Index i = 0; i < k; ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](Index x, Index y) {
    return fragments[static_cast<std::size_t>(x)].true_start <
           fragments[static_cast<std::size_t>(y)].true_start;
  });
  Index correct = 0;
  for (Index pos = 0; pos + 1 < k; ++pos) {
    const Index cur = order[static_cast<std::size_t>(pos)];
    const Index nxt = order[static_cast<std::size_t>(pos + 1)];
    if (successor[static_cast<std::size_t>(cur)] == static_cast<int>(nxt)) ++correct;
  }
  std::cout << "\nlayout recovery: " << correct << "/" << k - 1
            << " true adjacencies found\n";
  return 0;
}

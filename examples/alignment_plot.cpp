// Alignment dot-plot: 10^5-10^6 correlated window queries from one request.
//
//   build/examples/alignment_plot [length] [stride] [window]
//
// A mutated genome pair is plotted as a dense grid of window-LCS scores:
// cell (u, v) = LCS(a[u*stride, +window), b[v*stride, +window)). At small
// strides adjacent windows share almost all of their content, and the
// engine's planner exploits that: one strip kernel per grid row, then the
// whole row of overlapping windows lowered to a single seam walk along the
// kernel's main diagonal (core/query_index.hpp) instead of one wavelet-tree
// descent per cell. The demo runs the same plot with the planner on and
// off, checks the two are bit-identical, and renders the heatmap
// (max-pooled down to terminal width) -- the similarity band of the mutated
// pair shows up as the dark main diagonal.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "engine/engine.hpp"
#include "engine/protocol.hpp"
#include "util/fasta.hpp"
#include "util/timer.hpp"

using namespace semilocal;

namespace {

PlotAssembler run_plot(ComparisonEngine& engine, const Sequence& a, const Sequence& b,
                       const PlotSpec& spec, double& seconds) {
  PlotAssembler assembler(spec.rows, spec.cols, spec.quant);
  Timer t;
  engine.alignment_plot(a, b, spec, [&](PlotTile&& tile) {
    Response frame;
    frame.tile = std::move(tile);
    assembler.feed(frame);
    return true;
  });
  seconds = t.seconds();
  return assembler;
}

}  // namespace

int main(int argc, char** argv) {
  const Index length = argc > 1 ? std::atoll(argv[1]) : 6000;
  const Index stride = argc > 2 ? std::atoll(argv[2]) : 8;
  const Index window = argc > 3 ? std::atoll(argv[3]) : 128;

  GenomeModel model;
  model.length = length;
  auto [ra, rb] = generate_genome_pair(model, MutationModel{}, /*seed=*/7);
  const Sequence a = pack_dna(ra.residues);
  const Sequence b = pack_dna(rb.residues);

  PlotSpec spec;
  spec.window = window;
  spec.step = stride;
  spec.rows = (static_cast<Index>(a.size()) - window) / stride + 1;
  spec.cols = (static_cast<Index>(b.size()) - window) / stride + 1;
  std::cout << "pair of ~" << a.size() << " bp, " << spec.rows << "x" << spec.cols
            << " grid, window " << window << ", stride " << stride << " ("
            << spec.cells() << " window queries)\n";

  EngineOptions planner_opts;
  ComparisonEngine planner_engine(planner_opts);
  EngineOptions naive_opts;
  naive_opts.plot_planner = false;
  ComparisonEngine naive_engine(naive_opts);

  double planner_s = 0.0;
  double naive_s = 0.0;
  const PlotAssembler with = run_plot(planner_engine, a, b, spec, planner_s);
  const PlotAssembler without = run_plot(naive_engine, a, b, spec, naive_s);

  Index mismatches = 0;
  for (Index u = 0; u < spec.rows; ++u) {
    for (Index v = 0; v < spec.cols; ++v) {
      if (with.cell(u, v) != without.cell(u, v)) ++mismatches;
    }
  }
  if (mismatches != 0) {
    std::cerr << "planner diverged from naive lowering on " << mismatches
              << " cells!\n";
    return 1;
  }

  const auto stats = planner_engine.stats();
  std::cout << "planner: " << planner_s << " s   naive batch lowering: " << naive_s
            << " s   (" << naive_s / planner_s << "x)\n";
  std::cout << "descents reused by the seam walk: " << stats.queries.plot_reused_descents
            << " of " << stats.queries.plot_windows << " windows\n\n";

  // ASCII heatmap, max-pooled to at most 48x48, darkest = highest identity.
  const Index block = std::max<Index>(1, (std::max(spec.rows, spec.cols) + 47) / 48);
  const char* shades = " .:-=+*#%@";
  for (Index u0 = 0; u0 < spec.rows; u0 += block) {
    for (Index v0 = 0; v0 < spec.cols; v0 += block) {
      Index peak = 0;
      for (Index u = u0; u < std::min(spec.rows, u0 + block); ++u) {
        for (Index v = v0; v < std::min(spec.cols, v0 + block); ++v) {
          peak = std::max(peak, with.cell(u, v));
        }
      }
      std::cout << shades[std::min<Index>(9, (peak * 10) / window)];
    }
    std::cout << '\n';
  }
  std::cout << "\n(the dark diagonal is the mutated copy tracking its original;\n"
               " off-diagonal cells sit at the random-DNA background identity)\n";
  return 0;
}

// Approximate pattern matching via string-substring semi-local LCS.
//
//   build/examples/approximate_match [text_length] [pattern_length]
//
// Plants mutated copies of a pattern inside random text, then finds them
// with ONE semi-local kernel computation: the string-substring quadrant
// gives LCS(pattern, text[j0, j1)) for every window, so the best match ends
// at the column maximising H(m + j0, j1) over j0. This is the classical
// Sellers/Landau-Vishkin style task solved through the sticky-braid kernel.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/api.hpp"
#include "lcs/dp.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

using namespace semilocal;

int main(int argc, char** argv) {
  const Index text_length = argc > 1 ? std::atoll(argv[1]) : 20000;
  const Index pattern_length = argc > 2 ? std::atoll(argv[2]) : 200;
  constexpr Symbol kAlphabet = 4;

  // 1. Random text with three mutated plants of the pattern.
  const Sequence pattern = uniform_sequence(pattern_length, kAlphabet, 7);
  Sequence text = uniform_sequence(text_length, kAlphabet, 8);
  std::vector<Index> plant_sites;
  Rng rng(9);
  for (int copy = 0; copy < 3; ++copy) {
    const Sequence mutated =
        mutate_sequence(pattern, /*sub_rate=*/0.1, /*indels=*/pattern_length / 20,
                        kAlphabet, 10 + static_cast<std::uint64_t>(copy));
    // Resample until the plant does not overlap an earlier one.
    Index site = 0;
    for (int attempt = 0; attempt < 1000; ++attempt) {
      site = rng.uniform(0, text_length - static_cast<Index>(mutated.size()) - 1);
      bool clear = true;
      for (const Index prev : plant_sites) {
        if (std::abs(prev - site) < 2 * pattern_length) clear = false;
      }
      if (clear) break;
    }
    std::copy(mutated.begin(), mutated.end(),
              text.begin() + static_cast<std::ptrdiff_t>(site));
    plant_sites.push_back(site);
  }
  std::sort(plant_sites.begin(), plant_sites.end());
  std::cout << "planted " << plant_sites.size() << " mutated copies at:";
  for (const Index s : plant_sites) std::cout << ' ' << s;
  std::cout << "\n\n";

  // 2. One kernel of (pattern, text).
  Timer t;
  const auto kernel =
      semi_local_kernel(pattern, text, {.strategy = Strategy::kHybridTiled, .parallel = true});
  std::cout << "kernel built in " << t.seconds() << " s\n";

  // 3. Scan fixed-width windows; report local maxima above a threshold.
  const Index w = pattern_length + pattern_length / 5;  // allow for indels
  std::vector<std::pair<Index, Index>> hits;  // (score, start)
  for (Index j0 = 0; j0 + w <= text_length; ++j0) {
    hits.emplace_back(kernel.string_substring(j0, j0 + w), j0);
  }
  // Greedy non-overlapping peak extraction.
  std::sort(hits.rbegin(), hits.rend());
  std::vector<std::pair<Index, Index>> peaks;  // (start, score)
  for (const auto& [score, start] : hits) {
    if (score < (9 * pattern_length) / 10) break;
    bool overlaps = false;
    for (const auto& [ps, _] : peaks) {
      if (std::abs(ps - start) < w) overlaps = true;
    }
    if (!overlaps) peaks.emplace_back(start, score);
  }
  std::sort(peaks.begin(), peaks.end());

  std::cout << "detected matches (threshold 90% of |pattern|):\n";
  for (const auto& [start, score] : peaks) {
    std::cout << "  window [" << start << ", " << start + w << ")  LCS = " << score << "/"
              << pattern_length;
    // verify against a direct DP on the window
    const SequenceView window{text.data() + start, static_cast<std::size_t>(w)};
    std::cout << "  (DP check: " << lcs_score_dp(pattern, window) << ")\n";
  }
  std::cout << "\nexpected sites:";
  for (const Index s : plant_sites) std::cout << ' ' << s;
  std::cout << "\n";
  return 0;
}
